(* Base (atomic) routing algebras, the building blocks of Section 3.3:
   metarouting "provides instances of base algebras for adding link
   costs (addA) during path concatenation, and for specifying local
   preferences (lpA) used in route selection", plus the other classics
   (hop count, widest path / bandwidth, reliability).

   Signatures with a distinguished unreachable element use the [ext]
   type below; [Inf] plays phi for cost-like algebras. *)

type cost = Fin of int | Inf

let pp_cost ppf = function
  | Fin n -> Fmt.int ppf n
  | Inf -> Fmt.string ppf "inf"

let compare_cost a b =
  match a, b with
  | Fin x, Fin y -> compare x y
  | Fin _, Inf -> -1
  | Inf, Fin _ -> 1
  | Inf, Inf -> 0

(* addA: additive link costs; smaller is better; phi = Inf. *)
let add_cost ?(sig_samples = [ 0; 1; 2; 3; 5; 10 ])
    ?(label_samples = [ 0; 1; 2; 7 ]) () :
    (cost, int) Routing_algebra.t =
  Routing_algebra.make ~name:"addA"
    ~pref:compare_cost
    ~apply:(fun l s -> match s with Inf -> Inf | Fin c -> Fin (c + l))
    ~prohibited:Inf ~origin:(Fin 0)
    ~sig_samples:(List.map (fun c -> Fin c) sig_samples)
    ~label_samples ~pp_sig:pp_cost ~pp_label:Fmt.int ()

(* Strict variant: positive labels only, so growing strictly worsens. *)
let add_cost_strict ?(sig_samples = [ 0; 1; 2; 3; 5; 10 ])
    ?(label_samples = [ 1; 2; 7 ]) () : (cost, int) Routing_algebra.t =
  { (add_cost ~sig_samples ~label_samples ()) with name = "addA+" }

(* hopA: hop count = addA whose labels are ignored (every link counts
   one hop).  Labels are integers so hopA plugs into the same graphs as
   the cost algebras. *)
let hop_count () : (cost, int) Routing_algebra.t =
  Routing_algebra.make ~name:"hopA" ~pref:compare_cost
    ~apply:(fun _ s -> match s with Inf -> Inf | Fin c -> Fin (c + 1))
    ~prohibited:Inf ~origin:(Fin 0)
    ~sig_samples:[ Fin 0; Fin 1; Fin 2; Fin 5 ]
    ~label_samples:[ 1 ] ~pp_sig:pp_cost ~pp_label:Fmt.int ()

(* lpA: local preference.  The label *replaces* the signature
   (labelApply(l, s) = l, as in the paper's LP snippet); smaller values
   are preferred (prefRel(s1,s2) = s1 <= s2).  Deliberately NOT
   monotone: a link can assign a better preference than the path had —
   the canonical example of a useful algebra outside the idealized
   model (Section 4.1 discusses exactly this gap). *)
let local_pref ?(prohibited = 4) ?(sig_samples = [ 0; 1; 2; 3 ])
    ?(label_samples = [ 0; 1; 2; 3 ]) () : (int, int) Routing_algebra.t =
  Routing_algebra.make ~name:"lpA"
    ~pref:(fun s1 s2 -> compare s1 s2)
    ~apply:(fun l s -> if s = prohibited then prohibited else l)
    ~prohibited ~origin:0 ~sig_samples ~label_samples ~pp_sig:Fmt.int
    ~pp_label:Fmt.int ()

(* bandA: widest path.  Signature = available bandwidth, larger
   preferred; a link caps the bandwidth; phi = 0. *)
let bandwidth ?(sig_samples = [ 0; 1; 10; 100; 1000 ])
    ?(label_samples = [ 1; 10; 100; 1000 ]) () :
    (int, int) Routing_algebra.t =
  Routing_algebra.make ~name:"bandA"
    ~pref:(fun s1 s2 -> compare s2 s1)
    ~apply:(fun l s -> min l s)
    ~prohibited:0 ~origin:1000 ~sig_samples ~label_samples ~pp_sig:Fmt.int
    ~pp_label:Fmt.int ()

(* relA: reliability in per-mille; multiplicative; larger preferred;
   phi = 0. *)
let reliability ?(sig_samples = [ 0; 250; 500; 900; 1000 ])
    ?(label_samples = [ 500; 900; 990; 1000 ]) () :
    (int, int) Routing_algebra.t =
  Routing_algebra.make ~name:"relA"
    ~pref:(fun s1 s2 -> compare s2 s1)
    ~apply:(fun l s -> l * s / 1000)
    ~prohibited:0 ~origin:1000 ~sig_samples ~label_samples ~pp_sig:Fmt.int
    ~pp_label:Fmt.int ()

(* trivA: the one-point algebra (unit for compositions). *)
let trivial () : (cost, unit) Routing_algebra.t =
  Routing_algebra.make ~name:"trivA"
    ~pref:compare_cost
    ~apply:(fun () s -> s)
    ~prohibited:Inf ~origin:(Fin 0) ~sig_samples:[ Fin 0 ]
    ~label_samples:[ () ] ~pp_sig:pp_cost
    ~pp_label:(fun ppf () -> Fmt.string ppf "-")
    ()

(* The catalogue used by experiments E4/E5. *)
let all () : Routing_algebra.packed list =
  [
    Routing_algebra.pack (add_cost ());
    Routing_algebra.pack (add_cost_strict ());
    Routing_algebra.pack (hop_count ());
    Routing_algebra.pack (local_pref ());
    Routing_algebra.pack (bandwidth ());
    Routing_algebra.pack (reliability ());
    Routing_algebra.pack (trivial ());
  ]
