(* Composition operators over routing algebras (Section 3.3.1:
   "composition operators such as the lexical product operator that
   models lexicographical comparisons of multiple attributes in route
   selection").

   All composites inherit sample enumerations from their components (as
   cartesian products), so their proof obligations are discharged by the
   same {!Axioms} checkers — the analogue of PVS discharging the
   composite theory's TCCs. *)

open Routing_algebra

let cartesian xs ys =
  List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

(* Lexical product: compare on A first, tie-break on B.  A signature is
   prohibited as soon as either component is prohibited; [apply]
   normalizes such pairs to the canonical prohibited element so that
   absorption survives composition. *)
let lex_product ?name (a : ('sa, 'la) t) (b : ('sb, 'lb) t) :
    ('sa * 'sb, 'la * 'lb) t =
  let prohibited = (a.prohibited, b.prohibited) in
  let normalize (sa, sb) =
    if sa = a.prohibited || sb = b.prohibited then prohibited else (sa, sb)
  in
  let pref p q =
    let x1, y1 = normalize p and x2, y2 = normalize q in
    let c = a.pref x1 x2 in
    if c <> 0 then c else b.pref y1 y2
  in
  let apply (la, lb) s =
    let sa, sb = normalize s in
    if (sa, sb) = prohibited then prohibited
    else normalize (a.apply la sa, b.apply lb sb)
  in
  let nm =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "lexProduct[%s, %s]" a.name b.name
  in
  (* The composite signature space is (Sigma_a \ phi) x (Sigma_b \ phi)
     plus the canonical prohibited pair: mixed pairs are not
     signatures (normalization maps them to phi). *)
  let live xs phi = List.filter (fun s -> s <> phi) xs in
  make ~name:nm ~pref ~apply ~prohibited ~origin:(a.origin, b.origin)
    ~sig_samples:
      (cartesian (live a.sig_samples a.prohibited) (live b.sig_samples b.prohibited))
    ~label_samples:(cartesian a.label_samples b.label_samples)
    ~pp_sig:(fun ppf (x, y) -> Fmt.pf ppf "(%a, %a)" a.pp_sig x b.pp_sig y)
    ~pp_label:(fun ppf (x, y) -> Fmt.pf ppf "(%a, %a)" a.pp_label x b.pp_label y)
    ()

(* Scale: multiply every additive label by a positive constant (an
   algebra homomorphism on addA-like label structures). *)
let scale_labels ?name ~(factor : int) (a : ('s, int) t) : ('s, int) t =
  let nm =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "scale[%d](%s)" factor a.name
  in
  {
    a with
    name = nm;
    apply = (fun l s -> a.apply (factor * l) s);
    label_samples = a.label_samples;
  }

(* Label restriction: keep only labels satisfying a predicate.  This is
   how policy subsets are carved out of a bigger algebra; axioms can
   only become easier to satisfy. *)
let restrict_labels ?name ~(keep : 'l -> bool) (a : ('s, 'l) t) : ('s, 'l) t =
  let nm = match name with Some n -> n | None -> a.name ^ "|restricted" in
  { a with name = nm; label_samples = List.filter keep a.label_samples }

(* Disjoint union of label sets over a common signature: either
   component's labels may be applied (models protocols with several
   link types). *)
let label_union ?name (a : ('s, 'la) t) (b : ('s, 'lb) t) :
    ('s, ('la, 'lb) Either.t) t =
  let nm =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "union[%s, %s]" a.name b.name
  in
  if a.prohibited <> b.prohibited then
    invalid_arg "label_union: components must share the signature structure";
  make ~name:nm ~pref:a.pref
    ~apply:(fun l s ->
      match l with Either.Left la -> a.apply la s | Either.Right lb -> b.apply lb s)
    ~prohibited:a.prohibited ~origin:a.origin
    ~sig_samples:(a.sig_samples @ b.sig_samples)
    ~label_samples:
      (List.map Either.left a.label_samples
      @ List.map Either.right b.label_samples)
    ~pp_sig:a.pp_sig
    ~pp_label:(fun ppf -> function
      | Either.Left l -> a.pp_label ppf l
      | Either.Right l -> b.pp_label ppf l)
    ()

(* ------------------------------------------------------------------ *)
(* The paper's running example (Section 3.3.2):

     BGPSystem: THEORY = lexProduct[LP, RC]

   Local preference first, route cost as the tie breaker. *)
let bgp_system () =
  lex_product ~name:"BGPSystem" (Base.local_pref ()) (Base.add_cost ())

(* A well-behaved variant: strict cost under a constant (link-assigned)
   local preference policy that never raises preference — restricting
   lpA's labels to a single value makes it monotone, the kind of relaxed
   design FVN's checker lets one explore (Section 4.1). *)
let safe_bgp_system () =
  let lp_const =
    restrict_labels ~name:"lpA|const" ~keep:(fun l -> l = 1)
      (Base.local_pref ~sig_samples:[ 1 ] ())
  in
  lex_product ~name:"SafeBGPSystem" lp_const (Base.add_cost_strict ())
