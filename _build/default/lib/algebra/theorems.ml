(* Metarouting composition theorems, checked.

   The classic lexical-product preservation results (Gao/Griffin/
   Sobrinho) relate the composite's monotonicity to side conditions on
   the components:

     M(A (x) B)   <==  SM(A)  \/  (M(A) /\ M(B))
     SM(A (x) B)  <==  SM(A)  \/  (M(A) /\ SM(B))
     I(A (x) B)   <==  SI(A) /\ I(A) /\ I(B)

   where SI is strict isotonicity (strict preference preserved by label
   application): when A breaks a tie strictly the B components are
   irrelevant, and when A ties, I(B) carries the comparison.

   [lex_preservation] evaluates both sides on concrete algebras: the
   side conditions via the component reports, the conclusion by directly
   checking the composite.  A sound prediction never claims the
   conclusion when the direct check refutes it; experiment E5 prints the
   table and the test suite asserts soundness for the whole catalogue. *)

open Routing_algebra

type prediction = {
  composite : string;
  (* side-condition verdicts *)
  a_monotone : bool;
  a_strictly_monotone : bool;
  b_monotone : bool;
  b_strictly_monotone : bool;
  a_isotone : bool;
  b_isotone : bool;
  (* predicted by the theorems *)
  predicts_monotone : bool;
  predicts_strictly_monotone : bool;
  predicts_isotone : bool;
  (* measured on the composite *)
  composite_monotone : bool;
  composite_strictly_monotone : bool;
  composite_isotone : bool;
}

(* A prediction is sound when every predicted property is actually
   observed (predictions are sufficient conditions, not necessary). *)
let sound p =
  (not p.predicts_monotone || p.composite_monotone)
  && (not p.predicts_strictly_monotone || p.composite_strictly_monotone)
  && (not p.predicts_isotone || p.composite_isotone)

let lex_preservation (a : ('sa, 'la) t) (b : ('sb, 'lb) t) : prediction =
  let ra = Axioms.check_all a and rb = Axioms.check_all b in
  let composite = Compose.lex_product a b in
  let rc = Axioms.check_all composite in
  let h rep ax = Axioms.holds rep ax in
  let am = h ra Axioms.Monotonicity and asm = h ra Axioms.Strict_monotonicity in
  let bm = h rb Axioms.Monotonicity and bsm = h rb Axioms.Strict_monotonicity in
  let ai = h ra Axioms.Isotonicity and bi = h rb Axioms.Isotonicity in
  let asi = h ra Axioms.Strict_isotonicity in
  {
    composite = composite.name;
    a_monotone = am;
    a_strictly_monotone = asm;
    b_monotone = bm;
    b_strictly_monotone = bsm;
    a_isotone = ai;
    b_isotone = bi;
    predicts_monotone = asm || (am && bm);
    predicts_strictly_monotone = asm || (am && bsm);
    predicts_isotone = ai && bi && asi;
    composite_monotone = h rc Axioms.Monotonicity;
    composite_strictly_monotone = h rc Axioms.Strict_monotonicity;
    composite_isotone = h rc Axioms.Isotonicity;
  }

let pp_prediction ppf p =
  let b ppf v = Fmt.string ppf (if v then "yes" else "no") in
  Fmt.pf ppf
    "%s: M(A)=%a SM(A)=%a M(B)=%a SM(B)=%a | predict M=%a SM=%a I=%a | \
     actual M=%a SM=%a I=%a | %s"
    p.composite b p.a_monotone b p.a_strictly_monotone b p.b_monotone b
    p.b_strictly_monotone b p.predicts_monotone b p.predicts_strictly_monotone
    b p.predicts_isotone b p.composite_monotone b
    p.composite_strictly_monotone b p.composite_isotone
    (if sound p then "sound" else "UNSOUND")
