(* The four metarouting axioms as executable proof obligations.

   Each check evaluates the axiom exhaustively over the algebra's sample
   enumerations and either discharges it or returns a concrete
   counterexample (rendered with the algebra's printers).  This is the
   FVN substitute for PVS's automatically discharged theory-
   interpretation obligations (Section 3.3.2). *)

open Routing_algebra

type status =
  | Discharged of int  (* number of instances checked *)
  | Refuted of string  (* pretty-printed counterexample *)

type axiom =
  | Maximality
  | Absorption
  | Monotonicity
  | Strict_monotonicity
  | Isotonicity
  | Strict_isotonicity  (* auxiliary: strict preference preserved *)

let axiom_name = function
  | Maximality -> "maximality"
  | Absorption -> "absorption"
  | Monotonicity -> "monotonicity"
  | Strict_monotonicity -> "strict-monotonicity"
  | Isotonicity -> "isotonicity"
  | Strict_isotonicity -> "strict-isotonicity"

let all_axioms =
  [
    Maximality;
    Absorption;
    Monotonicity;
    Strict_monotonicity;
    Isotonicity;
    Strict_isotonicity;
  ]

(* phi is the unique least-preferred signature. *)
let check_maximality (a : ('s, 'l) t) : status =
  let bad =
    List.find_opt (fun s -> a.pref s a.prohibited > 0) a.sig_samples
  in
  match bad with
  | None -> Discharged (List.length a.sig_samples)
  | Some s ->
    Refuted (Fmt.str "%a is less preferred than phi" a.pp_sig s)

(* phi absorbs label application. *)
let check_absorption (a : ('s, 'l) t) : status =
  let bad =
    List.find_opt (fun l -> a.apply l a.prohibited <> a.prohibited) a.label_samples
  in
  match bad with
  | None -> Discharged (List.length a.label_samples)
  | Some l ->
    Refuted (Fmt.str "%a (+) phi <> phi" a.pp_label l)

(* Paths get no better as they grow: s <= l (+) s. *)
let check_monotonicity (a : ('s, 'l) t) : status =
  let count = ref 0 in
  let bad = ref None in
  List.iter
    (fun l ->
      List.iter
        (fun s ->
          incr count;
          if a.pref s (a.apply l s) > 0 then
            if !bad = None then bad := Some (l, s))
        a.sig_samples)
    a.label_samples;
  match !bad with
  | None -> Discharged !count
  | Some (l, s) ->
    Refuted
      (Fmt.str "%a (+) %a is preferred to %a" a.pp_label l a.pp_sig s a.pp_sig
         s)

(* Strictly worse, except from phi (which stays phi by absorption). *)
let check_strict_monotonicity (a : ('s, 'l) t) : status =
  let count = ref 0 in
  let bad = ref None in
  List.iter
    (fun l ->
      List.iter
        (fun s ->
          if not (is_prohibited a s) then begin
            incr count;
            if a.pref s (a.apply l s) >= 0 then
              if !bad = None then bad := Some (l, s)
          end)
        a.sig_samples)
    a.label_samples;
  match !bad with
  | None -> Discharged !count
  | Some (l, s) ->
    Refuted
      (Fmt.str "%a (+) %a is not strictly worse than %a" a.pp_label l a.pp_sig
         s a.pp_sig s)

(* Preference is preserved by label application. *)
let check_isotonicity (a : ('s, 'l) t) : status =
  let count = ref 0 in
  let bad = ref None in
  List.iter
    (fun l ->
      List.iter
        (fun s1 ->
          List.iter
            (fun s2 ->
              incr count;
              if
                a.pref s1 s2 <= 0
                && a.pref (a.apply l s1) (a.apply l s2) > 0
              then if !bad = None then bad := Some (l, s1, s2))
            a.sig_samples)
        a.sig_samples)
    a.label_samples;
  match !bad with
  | None -> Discharged !count
  | Some (l, s1, s2) ->
    Refuted
      (Fmt.str "%a <= %a but %a (+) %a > %a (+) %a" a.pp_sig s1 a.pp_sig s2
         a.pp_label l a.pp_sig s1 a.pp_label l a.pp_sig s2)

(* Strict preference is preserved by label application (needed as a
   side condition for lexical-product isotonicity). *)
let check_strict_isotonicity (a : ('s, 'l) t) : status =
  let count = ref 0 in
  let bad = ref None in
  List.iter
    (fun l ->
      List.iter
        (fun s1 ->
          List.iter
            (fun s2 ->
              incr count;
              if
                a.pref s1 s2 < 0
                && a.pref (a.apply l s1) (a.apply l s2) >= 0
              then if !bad = None then bad := Some (l, s1, s2))
            a.sig_samples)
        a.sig_samples)
    a.label_samples;
  match !bad with
  | None -> Discharged !count
  | Some (l, s1, s2) ->
    Refuted
      (Fmt.str "%a < %a but %a (+) %a >= %a (+) %a" a.pp_sig s1 a.pp_sig s2
         a.pp_label l a.pp_sig s1 a.pp_label l a.pp_sig s2)

(* The preference relation itself must be a total preorder on the
   samples (reflexive, transitive, total).  Not one of the four paper
   axioms but a well-formedness obligation PVS would impose via typing. *)
let check_preorder (a : ('s, 'l) t) : status =
  let ss = a.sig_samples in
  let bad = ref None in
  let count = ref 0 in
  List.iter
    (fun x ->
      incr count;
      if a.pref x x <> 0 then if !bad = None then bad := Some "not reflexive")
    ss;
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          incr count;
          if a.pref x y < 0 && a.pref y x < 0 then
            if !bad = None then bad := Some "asymmetry violated";
          List.iter
            (fun z ->
              incr count;
              if a.pref x y <= 0 && a.pref y z <= 0 && a.pref x z > 0 then
                if !bad = None then bad := Some "not transitive")
            ss)
        ss)
    ss;
  match !bad with None -> Discharged !count | Some msg -> Refuted msg

let check (a : ('s, 'l) t) = function
  | Maximality -> check_maximality a
  | Absorption -> check_absorption a
  | Monotonicity -> check_monotonicity a
  | Strict_monotonicity -> check_strict_monotonicity a
  | Isotonicity -> check_isotonicity a
  | Strict_isotonicity -> check_strict_isotonicity a

type report = {
  algebra : string;
  results : (axiom * status) list;
  preorder : status;
}

let check_all (a : ('s, 'l) t) : report =
  {
    algebra = a.name;
    results = List.map (fun ax -> (ax, check a ax)) all_axioms;
    preorder = check_preorder a;
  }

let check_packed (Packed a) = check_all a

let holds report axiom =
  match List.assoc_opt axiom report.results with
  | Some (Discharged _) -> true
  | _ -> false

(* Convergence guarantee per metarouting: monotone + isotone. *)
let well_behaved report =
  holds report Monotonicity && holds report Isotonicity

let pp_status ppf = function
  | Discharged n -> Fmt.pf ppf "discharged (%d instances)" n
  | Refuted msg -> Fmt.pf ppf "REFUTED: %s" msg

let pp_report ppf r =
  Fmt.pf ppf "algebra %s:@." r.algebra;
  Fmt.pf ppf "  %-20s %a@." "preorder" pp_status r.preorder;
  List.iter
    (fun (ax, st) -> Fmt.pf ppf "  %-20s %a@." (axiom_name ax) pp_status st)
    r.results
