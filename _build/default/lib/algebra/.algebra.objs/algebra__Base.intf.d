lib/algebra/base.mli: Fmt Routing_algebra
