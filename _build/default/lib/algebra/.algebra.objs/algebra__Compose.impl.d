lib/algebra/compose.ml: Base Either Fmt List Printf Routing_algebra
