lib/algebra/base.ml: Fmt List Routing_algebra
