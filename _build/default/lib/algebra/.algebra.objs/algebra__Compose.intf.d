lib/algebra/compose.mli: Base Either Routing_algebra
