lib/algebra/theorems.mli: Fmt Routing_algebra
