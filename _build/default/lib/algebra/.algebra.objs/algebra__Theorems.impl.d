lib/algebra/theorems.ml: Axioms Compose Fmt Routing_algebra
