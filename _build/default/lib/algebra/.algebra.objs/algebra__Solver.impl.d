lib/algebra/solver.ml: List Map Printf Routing_algebra String
