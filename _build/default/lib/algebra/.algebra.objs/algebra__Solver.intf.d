lib/algebra/solver.mli: Map Routing_algebra String
