lib/algebra/routing_algebra.ml: Fmt List
