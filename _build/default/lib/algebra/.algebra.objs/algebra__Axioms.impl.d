lib/algebra/axioms.ml: Fmt List Routing_algebra
