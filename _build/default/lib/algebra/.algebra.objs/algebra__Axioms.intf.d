lib/algebra/axioms.mli: Fmt Routing_algebra
