lib/algebra/routing_algebra.mli: Fmt
