(** SPP dynamics as transition systems for the model checker
    (experiment E9): states are path assignments, transitions are node
    activations. *)

type state = Instance.path list
(** Assignments as lists, so the checker's table hashes structurally. *)

val of_assignment : Instance.assignment -> state
val to_assignment : state -> Instance.assignment

val interleaved : Instance.t -> state Mcheck.Explore.system
(** One node activates at a time; only state-changing activations are
    transitions, so stable assignments are exactly the terminal
    states. *)

val synchronous : Instance.t -> state Mcheck.Explore.system
(** All nodes activate simultaneously (at most one successor): the
    semantics under which Disagree oscillates. *)

val is_stable : Instance.t -> state -> bool

(** Model-checking summary for one instance (one E9 table row). *)
type report = {
  states : int;
  transitions : int;
  stable_reachable : int;  (** reachable terminal (stable) states *)
  oscillation : state Mcheck.Explore.lasso option;
      (** a reachable all-unstable cycle under interleaving *)
  sync_oscillates : bool;  (** such a cycle exists under synchrony *)
}

val analyze : ?max_states:int -> Instance.t -> report
