(* SPP dynamics as transition systems for the model checker (experiment
   E9): states are path assignments, transitions are node activations.

   Two semantics:
   - [interleaved]: one node activates at a time (only activations that
     change the state are transitions, so stable assignments are exactly
     the terminal states);
   - [synchronous]: all nodes activate simultaneously (one successor),
     the semantics under which Disagree oscillates forever. *)

(* States as plain lists of int lists. *)
type state = Instance.path list

let of_assignment (a : Instance.assignment) : state = Array.to_list a
let to_assignment (s : state) : Instance.assignment = Array.of_list s

(* Full-depth state identity for the checker's visited table:
   [Hashtbl.hash] truncates at its default depth/size limits, so large
   assignments would collapse into a few buckets. *)
let state_equal (a : state) (b : state) = List.equal (List.equal Int.equal) a b

let state_hash (s : state) =
  List.fold_left
    (fun acc p ->
      List.fold_left (fun acc u -> (acc * 31) + u + 1) ((acc * 31) + 7) p)
    0 s

let interleaved (t : Instance.t) : state Mcheck.Explore.system =
  let initial = [ of_assignment (Instance.empty_assignment t) ] in
  let successors s =
    let a = to_assignment s in
    List.filter_map
      (fun u ->
        if u = 0 then None
        else
          let b = Solver.Spvp.activate t a u in
          if b = a then None else Some (of_assignment b))
      (Instance.nodes t)
  in
  let pp ppf s = Instance.pp_assignment ppf (to_assignment s) in
  Mcheck.Explore.make ~pp ~equal:state_equal ~hash:state_hash ~initial
    ~successors ()

let synchronous (t : Instance.t) : state Mcheck.Explore.system =
  let initial = [ of_assignment (Instance.empty_assignment t) ] in
  let successors s =
    let a = to_assignment s in
    let b = Solver.Spvp.activate_all t a in
    if b = a then [] else [ of_assignment b ]
  in
  let pp ppf s = Instance.pp_assignment ppf (to_assignment s) in
  Mcheck.Explore.make ~pp ~equal:state_equal ~hash:state_hash ~initial
    ~successors ()

let is_stable (t : Instance.t) (s : state) = Instance.is_stable t (to_assignment s)

(* Model-checking summary for one instance, as reported by E9. *)
type report = {
  states : int;
  transitions : int;
  stable_reachable : int;  (* reachable terminal (stable) states *)
  oscillation : state Mcheck.Explore.lasso option;  (* interleaved lasso *)
  sync_oscillates : bool;  (* synchronous-schedule lasso exists *)
}

let analyze ?(max_states = 50_000) (t : Instance.t) : report =
  let sys = interleaved t in
  let stats = Mcheck.Explore.explore ~max_states sys in
  let oscillation =
    Mcheck.Explore.can_avoid ~max_states sys ~good:(is_stable t)
  in
  let sync_oscillates =
    Mcheck.Explore.can_avoid ~max_states (synchronous t) ~good:(is_stable t)
    <> None
  in
  {
    states = stats.Mcheck.Explore.states;
    transitions = stats.Mcheck.Explore.transitions;
    stable_reachable =
      List.length
        (List.filter (is_stable t) stats.Mcheck.Explore.terminal);
    oscillation;
    sync_oscillates;
  }
