(** The Stable Paths Problem (Griffin–Shepherd–Wilfong), the
    combinatorial model behind the paper's BGP discussion (refs
    [7, 8]).

    Nodes are [0 .. n-1] with node [0] the origin.  Each node carries a
    ranked list of permitted paths to the origin; lower rank is more
    preferred; the empty path (unreachable) is implicitly permitted and
    least preferred. *)

type path = int list
(** [\[u; ...; 0\]], or [\[\]] for the empty path. *)

type t

exception Ill_formed of string

val origin : int
(** Node 0. *)

val make : n:int -> path list list -> t
(** [make ~n permitted] takes one permitted list per node [1 .. n-1],
    most-preferred first.
    @raise Ill_formed when a path does not run from its node to the
    origin, or the list count is wrong. *)

val nodes : t -> int list
val permitted : t -> int -> path list

val rank : t -> int -> path -> int option
(** Position in the permitted list; the empty path ranks
    [Some max_int]; unknown paths are [None]. *)

val is_permitted : t -> int -> path -> bool

val neighbors : t -> int -> int list
(** Adjacency induced by the permitted paths: [v] is a neighbour of [u]
    when some permitted path of [u] starts [u; v; ...]. *)

(** {1 Path assignments} *)

type assignment = path array
(** One current path per node ([\[\]] = none); node 0 pinned to
    [\[0\]]. *)

val empty_assignment : t -> assignment

val choices : t -> assignment -> int -> path list
(** The permitted, loop-free extensions [u :: a(v)] available to [u]
    through its neighbours under assignment [a]. *)

val best : t -> assignment -> int -> path
(** The lowest-rank choice, or [\[\]]. *)

val is_stable : t -> assignment -> bool
(** Every node's assignment equals its best choice: a solution of the
    SPP. *)

val is_consistent : t -> assignment -> bool
(** Tree property: a non-empty path factors through its next hop's
    assigned path. *)

val pp_path : path Fmt.t
val pp_assignment : assignment Fmt.t
val pp : t Fmt.t

val size : t -> int
(** The number of nodes (including the origin). *)
