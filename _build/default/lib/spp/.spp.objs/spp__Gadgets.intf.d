lib/spp/gadgets.mli: Instance
