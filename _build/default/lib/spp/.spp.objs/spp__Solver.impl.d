lib/spp/solver.ml: Array Hashtbl Instance List Option Random
