lib/spp/ts.mli: Instance Mcheck
