lib/spp/instance.ml: Array Fmt Fun List Option Printf
