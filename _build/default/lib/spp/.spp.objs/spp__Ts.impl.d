lib/spp/ts.ml: Array Instance Int List Mcheck Solver
