lib/spp/ts.ml: Array Instance List Mcheck Solver
