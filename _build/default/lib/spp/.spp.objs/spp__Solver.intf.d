lib/spp/solver.mli: Instance
