lib/spp/gadgets.ml: Instance
