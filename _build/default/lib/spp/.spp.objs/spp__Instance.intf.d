lib/spp/instance.mli: Fmt
