(* The classic SPP gadgets from Griffin–Shepherd–Wilfong, used across
   the experiments:

   - [shortest_paths]: policies consistent with a cost metric; unique
     solution, always converges (the well-behaved baseline);
   - [disagree]: two stable solutions; the protocol can oscillate
     forever under an unlucky (synchronous) schedule and converges only
     when asynchrony breaks the tie — the paper's "Disagree scenario in
     the presence of policy conflicts";
   - [bad_gadget]: no stable solution at all: the protocol diverges
     under every fair schedule;
   - [good_gadget]: a safe instance that still contains a preference
     cycle among non-best paths (convergent despite policy structure). *)

(* DISAGREE: nodes 1 and 2 each prefer the route through the other over
   their own direct route to the origin. *)
let disagree : Instance.t =
  Instance.make ~n:3
    [
      (* node 1 *) [ [ 1; 2; 0 ]; [ 1; 0 ] ];
      (* node 2 *) [ [ 2; 1; 0 ]; [ 2; 0 ] ];
    ]

(* The same topology with shortest-path (cost-consistent) policies. *)
let agree : Instance.t =
  Instance.make ~n:3
    [
      (* node 1 *) [ [ 1; 0 ]; [ 1; 2; 0 ] ];
      (* node 2 *) [ [ 2; 0 ]; [ 2; 1; 0 ] ];
    ]

(* SHORTEST PATHS on a 4-node diamond: 1 and 2 sit between 3 and 0. *)
let shortest_paths : Instance.t =
  Instance.make ~n:4
    [
      (* node 1 *) [ [ 1; 0 ] ];
      (* node 2 *) [ [ 2; 0 ] ];
      (* node 3 *) [ [ 3; 1; 0 ]; [ 3; 2; 0 ] ];
    ]

(* BAD GADGET: a 3-cycle around the origin where each node prefers the
   route through its clockwise neighbour over its direct route.  No
   stable assignment exists. *)
let bad_gadget : Instance.t =
  Instance.make ~n:4
    [
      (* node 1 *) [ [ 1; 2; 0 ]; [ 1; 0 ] ];
      (* node 2 *) [ [ 2; 3; 0 ]; [ 2; 0 ] ];
      (* node 3 *) [ [ 3; 1; 0 ]; [ 3; 0 ] ];
    ]

(* GOOD GADGET: same cycle, but node 3 ranks its direct route first.
   The cycle in preferences is broken; a unique solution exists. *)
let good_gadget : Instance.t =
  Instance.make ~n:4
    [
      (* node 1 *) [ [ 1; 2; 0 ]; [ 1; 0 ] ];
      (* node 2 *) [ [ 2; 3; 0 ]; [ 2; 0 ] ];
      (* node 3 *) [ [ 3; 0 ]; [ 3; 1; 0 ] ];
    ]

let all : (string * Instance.t) list =
  [
    ("shortest-paths", shortest_paths);
    ("agree", agree);
    ("disagree", disagree);
    ("good-gadget", good_gadget);
    ("bad-gadget", bad_gadget);
  ]
