(** The classic SPP gadgets (Griffin–Shepherd–Wilfong), used across
    tests, examples, and experiment E9. *)

val disagree : Instance.t
(** Two stable solutions; oscillates forever under synchronous
    activation — the paper's "Disagree scenario in the presence of
    policy conflicts". *)

val agree : Instance.t
(** The same topology with cost-consistent policies: unique solution. *)

val shortest_paths : Instance.t
(** A 4-node shortest-paths instance: unique solution, always safe. *)

val bad_gadget : Instance.t
(** No stable solution; diverges under every schedule. *)

val good_gadget : Instance.t
(** Unique solution despite a preference cycle among non-best paths. *)

val all : (string * Instance.t) list
