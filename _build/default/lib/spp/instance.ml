(* The Stable Paths Problem (Griffin, Shepherd, Wilfong: "The stable
   paths problem and interdomain routing"), the combinatorial model
   behind the paper's BGP discussion (refs [7, 8]).

   An instance has nodes [0 .. n-1]; node 0 is the origin.  Each node
   carries a ranked list of *permitted paths* to the origin (first
   element of the path is the node itself, last is 0); lower rank means
   more preferred.  The empty path (unreachable) is always implicitly
   permitted and least preferred. *)

type path = int list  (* [u; ...; 0] or [] for the empty path *)

type t = {
  n : int;
  (* permitted.(u) lists u's permitted paths most-preferred first. *)
  permitted : path list array;
}

exception Ill_formed of string

let origin = 0

let make ~n permitted_lists =
  if List.length permitted_lists <> n - 1 then
    raise
      (Ill_formed
         (Printf.sprintf "expected %d permitted lists (nodes 1..%d)" (n - 1)
            (n - 1)));
  let permitted = Array.make n [] in
  permitted.(0) <- [ [ 0 ] ];
  List.iteri
    (fun i paths ->
      let u = i + 1 in
      List.iter
        (fun p ->
          match p with
          | v :: _ when v = u && List.rev p |> List.hd = origin -> ()
          | _ ->
            raise
              (Ill_formed
                 (Printf.sprintf "path of node %d must run from %d to 0" u u)))
        paths;
      permitted.(u) <- paths)
    permitted_lists;
  { n; permitted }

let nodes t = List.init t.n Fun.id

let size t = t.n

let permitted t u = t.permitted.(u)

(* Rank of a path at node u: position in the permitted list;
   the empty path ranks below everything. *)
let rank t u (p : path) : int option =
  if p = [] then Some max_int
  else
    let rec go i = function
      | [] -> None
      | q :: rest -> if q = p then Some i else go (i + 1) rest
    in
    go 0 t.permitted.(u)

let is_permitted t u p = p = [] || rank t u p <> None

(* Neighbour relation induced by the permitted paths: u and v are
   adjacent when some permitted path of u starts [u; v; ...]. *)
let neighbors t u =
  List.filter_map
    (function
      | _ :: v :: _ -> Some v
      | _ -> None)
    t.permitted.(u)
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Path assignments. *)

(* An assignment maps each node to its current path ([] = none).  Node 0
   is pinned to [0]. *)
type assignment = path array

let empty_assignment t : assignment =
  let a = Array.make t.n [] in
  a.(0) <- [ 0 ];
  a

(* The candidate paths available to u under assignment [a]: for each
   neighbour v with a non-empty assigned path, the extension u::a(v),
   filtered to permitted, loop-free ones. *)
let choices t (a : assignment) u : path list =
  if u = origin then [ [ 0 ] ]
  else
    List.filter_map
      (fun v ->
        match a.(v) with
        | [] -> None
        | p ->
          let ext = u :: p in
          if List.mem u p then None
          else if is_permitted t u ext && rank t u ext <> Some max_int then
            Some ext
          else None)
      (neighbors t u)

(* The best (lowest-rank) choice, or [] if none. *)
let best t (a : assignment) u : path =
  let ranked =
    List.filter_map
      (fun p -> Option.map (fun r -> (r, p)) (rank t u p))
      (choices t a u)
  in
  match List.sort compare ranked with
  | (_, p) :: _ -> p
  | [] -> []

(* [a] is stable iff every node's assignment equals its best choice. *)
let is_stable t (a : assignment) : bool =
  List.for_all (fun u -> a.(u) = best t a u) (nodes t)

(* Consistency: u's non-empty path must factor through its next hop's
   assigned path (the tree property of path assignments). *)
let is_consistent t (a : assignment) : bool =
  List.for_all
    (fun u ->
      match a.(u) with
      | [] -> true
      | [ v ] -> v = origin && u = origin
      | _ :: v :: _ as p -> (
        match a.(v) with [] -> false | q -> p = u :: q))
    (nodes t)

let pp_path ppf = function
  | [] -> Fmt.string ppf "eps"
  | p -> Fmt.(list ~sep:(any " ") int) ppf p

let pp_assignment ppf (a : assignment) =
  Array.iteri (fun u p -> Fmt.pf ppf "  %d: %a@." u pp_path p) a

let pp ppf t =
  List.iter
    (fun u ->
      Fmt.pf ppf "node %d: %a@." u Fmt.(list ~sep:(any " > ") pp_path) t.permitted.(u))
    (nodes t)
