(** The transition-system (linear-logic flavoured) view of NDlog
    execution (Section 4.3: "view the declarative networking
    specification as a set of transition rules that determine the
    updates of the underlying routing tables").

    States are databases; transitions insert rule consequences.
    Count-to-infinity programs yield infinite state spaces, which
    bounded exploration reports as truncation. *)

val enabled_insertions :
  Ndlog.Ast.program -> Ndlog.Store.t -> (string * Ndlog.Store.Tuple.t) list
(** All single-tuple insertions enabled in a database (non-aggregate
    rules), deduplicated. *)

val system : Ndlog.Ast.program -> Ndlog.Store.t Explore.system
(** Fine-grained: one successor per enabled insertion. *)

val batched_system : Ndlog.Ast.program -> Ndlog.Store.t Explore.system
(** One successor per state (all enabled insertions at once): a much
    smaller space with the same terminal fixpoint. *)

val check_table_invariant :
  ?max_states:int ->
  Ndlog.Ast.program ->
  (Ndlog.Store.t -> bool) ->
  (Ndlog.Store.t Explore.stats, Ndlog.Store.t Explore.violation) result
(** Safety over every reachable database of the batched system. *)
