(* The transition-system (linear-logic flavoured) view of NDlog
   execution, per Section 4.3: "view the declarative networking
   specification as a set of transition rules that determine the updates
   of the underlying routing tables".

   A state is a database ({!Ndlog.Store.t}); a transition fires one rule
   on one satisfying environment and inserts the (single) new head
   tuple.  The resulting system feeds the {!Explore} checker: safety
   invariants over table contents, divergence (for count-to-infinity,
   the state space is infinite and exploration truncates at the bound —
   truncation at ever-growing cost values is itself the symptom), and
   terminal states (fixpoints). *)

module Ast = Ndlog.Ast
module Store = Ndlog.Store
module Eval = Ndlog.Eval

(* All single-tuple insertions enabled in [db]. *)
let enabled_insertions (p : Ast.program) (db : Store.t) :
    (string * Store.Tuple.t) list =
  List.concat_map
    (fun (r : Ast.rule) ->
      if Ast.has_aggregate r.Ast.head then []
      else
        Eval.body_envs db r.Ast.body
        |> List.filter_map (fun env ->
               let t = Eval.head_tuple env r.Ast.head in
               if Store.mem r.Ast.head.Ast.head_pred t db then None
               else Some (r.Ast.head.Ast.head_pred, t)))
    p.Ast.rules
  |> List.sort_uniq compare

(* State identity must be [Store.equal]/[Store.hash]: both ignore the
   store's mutable index cache, which the checker's structural defaults
   would see — a cache-warm database would then neither compare nor
   hash equal to the same database cache-cold, and every logical state
   would be visited once per cache configuration. *)
let system (p : Ast.program) : Store.t Explore.system =
  let initial = [ Store.of_facts p.Ast.facts ] in
  let successors db =
    List.map (fun (pred, t) -> Store.add pred t db) (enabled_insertions p db)
  in
  Explore.make ~pp:Store.pp ~equal:Store.equal ~hash:Store.hash ~initial
    ~successors ()

(* A coarser system that fires all enabled insertions at once (one
   successor per state): much smaller state space, same fixpoint. *)
let batched_system (p : Ast.program) : Store.t Explore.system =
  let initial = [ Store.of_facts p.Ast.facts ] in
  let successors db =
    match enabled_insertions p db with
    | [] -> []
    | ins -> [ List.fold_left (fun db (pred, t) -> Store.add pred t db) db ins ]
  in
  Explore.make ~pp:Store.pp ~equal:Store.equal ~hash:Store.hash ~initial
    ~successors ()

(* Check a safety invariant over every reachable database. *)
let check_table_invariant ?max_states (p : Ast.program)
    (inv : Store.t -> bool) =
  Explore.check_invariant ?max_states (batched_system p) inv
