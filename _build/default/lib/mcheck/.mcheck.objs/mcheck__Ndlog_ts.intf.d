lib/mcheck/ndlog_ts.mli: Explore Ndlog
