lib/mcheck/ndlog_ts.ml: Explore List Ndlog
