lib/mcheck/explore.ml: Array Fmt Hashtbl List Option Queue
