lib/mcheck/soft_ts.ml: Explore Fmt Hashtbl List Ndlog Ndlog_ts String
