lib/mcheck/soft_ts.ml: Explore Fmt List Ndlog Ndlog_ts
