lib/mcheck/soft_ts.mli: Explore Ndlog
