lib/mcheck/explore.mli: Fmt
