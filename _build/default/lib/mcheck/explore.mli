(** A small explicit-state model checker (the paper's Section 4.3:
    "leverage such transition system representation to directly
    interface with model checkers").

    Works over any transition system given as initial states plus a
    successor function.  State identity is the system's [equal]/[hash]
    pair; the structural default ([(=)] / [Hashtbl.hash]) is only
    correct for small pure-data states — a state type with derived
    mutable fields (e.g. {!Ndlog.Store.t}'s index cache, ignored by
    {!Ndlog.Store.equal}/{!Ndlog.Store.hash}) must supply its own pair
    or the same logical state is visited once per cache configuration,
    and [Hashtbl.hash]'s depth/size truncation collapses large states
    into a few buckets. *)

type 'state system = {
  initial : 'state list;
  successors : 'state -> 'state list;
  pp : 'state Fmt.t;
  equal : 'state -> 'state -> bool;  (** state identity *)
  hash : 'state -> int;  (** must agree with [equal] *)
}

val make :
  ?pp:'state Fmt.t ->
  ?equal:('state -> 'state -> bool) ->
  ?hash:('state -> int) ->
  initial:'state list ->
  successors:('state -> 'state list) ->
  unit ->
  'state system

(** The visited-state table: a hashtable keyed by the state hash, with
    bucket lists resolved by the state equality.  Exposed for tests
    that check the bucket distribution of a state hash. *)
module Table : sig
  type 'state t

  val create :
    ?equal:('state -> 'state -> bool) ->
    ?hash:('state -> int) ->
    unit ->
    'state t

  val of_system : 'state system -> 'state t
  val find : 'state t -> 'state -> int option
  val add : 'state t -> 'state -> int -> unit
  val mem : 'state t -> 'state -> bool
  val size : 'state t -> int

  val buckets : 'state t -> int
  (** Distinct hash values present. *)

  val max_bucket : 'state t -> int
  (** Size of the fullest bucket (states sharing one hash). *)
end

(** Reachability statistics. *)
type 'state stats = {
  states : int;
  transitions : int;
  max_depth : int;
  terminal : 'state list;  (** reachable states with no successors *)
  truncated : bool;  (** the state bound was hit *)
}

val explore : ?max_states:int -> 'state system -> 'state stats
(** Breadth-first exploration (default bound 100_000 states). *)

(** An invariant violation with its shortest witness. *)
type 'state violation = {
  trace : 'state list;  (** from an initial state to the violation *)
  violating : 'state;
}

val check_invariant :
  ?max_states:int ->
  'state system ->
  ('state -> bool) ->
  ('state stats, 'state violation) result
(** Safety checking by BFS with parent pointers: counterexample traces
    are shortest. *)

(** A reachable cycle: witness of a possible non-terminating run. *)
type 'state lasso = {
  stem : 'state list;  (** may be empty (not reconstructed) *)
  cycle : 'state list;
}

val find_lasso :
  ?max_states:int ->
  ?within:('state -> bool) ->
  'state system ->
  'state lasso option
(** A reachable cycle whose states all satisfy [within] (DFS with an
    on-stack marker). *)

val can_avoid :
  ?max_states:int -> 'state system -> good:('state -> bool) ->
  'state lasso option
(** Can the system run forever avoiding [good] states?  [Some lasso]
    witnesses yes (the oscillation detector of experiment E9). *)
