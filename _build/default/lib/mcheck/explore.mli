(** A small explicit-state model checker (the paper's Section 4.3:
    "leverage such transition system representation to directly
    interface with model checkers").

    Works over any transition system given as initial states plus a
    successor function; states must be pure data (hashed and compared
    structurally). *)

type 'state system = {
  initial : 'state list;
  successors : 'state -> 'state list;
  pp : 'state Fmt.t;
}

val make :
  ?pp:'state Fmt.t ->
  initial:'state list ->
  successors:('state -> 'state list) ->
  unit ->
  'state system

(** Reachability statistics. *)
type 'state stats = {
  states : int;
  transitions : int;
  max_depth : int;
  terminal : 'state list;  (** reachable states with no successors *)
  truncated : bool;  (** the state bound was hit *)
}

val explore : ?max_states:int -> 'state system -> 'state stats
(** Breadth-first exploration (default bound 100_000 states). *)

(** An invariant violation with its shortest witness. *)
type 'state violation = {
  trace : 'state list;  (** from an initial state to the violation *)
  violating : 'state;
}

val check_invariant :
  ?max_states:int ->
  'state system ->
  ('state -> bool) ->
  ('state stats, 'state violation) result
(** Safety checking by BFS with parent pointers: counterexample traces
    are shortest. *)

(** A reachable cycle: witness of a possible non-terminating run. *)
type 'state lasso = {
  stem : 'state list;  (** may be empty (not reconstructed) *)
  cycle : 'state list;
}

val find_lasso :
  ?max_states:int ->
  ?within:('state -> bool) ->
  'state system ->
  'state lasso option
(** A reachable cycle whose states all satisfy [within] (DFS with an
    on-stack marker). *)

val can_avoid :
  ?max_states:int -> 'state system -> good:('state -> bool) ->
  'state lasso option
(** Can the system run forever avoiding [good] states?  [Some lasso]
    witnesses yes (the oscillation detector of experiment E9). *)
