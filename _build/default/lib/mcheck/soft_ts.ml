(* Model checking soft-state protocols: the combination the paper's
   Section 4 aims at — soft-state semantics (4.2) expressed as a
   transition system (4.3) "to directly produce system models for model
   checking tools".

   A state couples a database with a discrete clock and the leases of
   its soft tuples.  Transitions are:

   - derivation: insert one enabled rule consequence (leased at
     [clock + lifetime] when its predicate is soft);
   - tick: advance the clock by one, drop expired tuples, apply the
     environment's injections for the new instant (refreshes, new
     pings, ...).

   The clock is bounded by [horizon], so the state space is finite
   whenever the value domain is.  Leases make expiry part of the state:
   safety properties can now speak about time ("after refreshes stop,
   liveness tuples eventually vanish in every execution"). *)

module Ast = Ndlog.Ast
module Store = Ndlog.Store

type lease = (string * Store.Tuple.t) * int  (* tuple, expiry instant *)

type state = {
  clock : int;
  db : Store.t;
  leases : lease list;  (* sorted, canonical *)
}

let canonical_leases (l : lease list) : lease list = List.sort compare l

let initial_state = { clock = 0; db = Store.empty; leases = [] }

type config = {
  program : Ast.program;
  horizon : int;
  (* External insertions that happen at a given instant. *)
  inject : int -> (string * Store.Tuple.t) list;
  lifetimes : (string * int) list;  (* soft predicates *)
}

let make_config ?(horizon = 10) ?(inject = fun _ -> []) (program : Ast.program)
    : config =
  let lifetimes =
    List.filter_map
      (fun (d : Ast.decl) ->
        match d.Ast.decl_lifetime with
        | Ast.Lifetime l -> Some (d.Ast.decl_pred, int_of_float l)
        | Ast.Lifetime_forever -> None)
      program.Ast.decls
  in
  { program; horizon; inject; lifetimes }

let lifetime_of cfg pred = List.assoc_opt pred cfg.lifetimes

(* Insert with lease bookkeeping; re-insertion refreshes. *)
let insert cfg (s : state) pred tuple : state =
  let db = Store.add pred tuple s.db in
  match lifetime_of cfg pred with
  | None -> { s with db }
  | Some life ->
    let key = (pred, tuple) in
    let leases =
      ((key, s.clock + life))
      :: List.filter (fun (k, _) -> k <> key) s.leases
    in
    { s with db; leases = canonical_leases leases }

(* The tick transition. *)
let tick cfg (s : state) : state =
  let clock = s.clock + 1 in
  let dead, alive = List.partition (fun (_, d) -> d <= clock) s.leases in
  let db =
    List.fold_left (fun db ((p, t), _) -> Store.remove p t db) s.db dead
  in
  let s' = { clock; db; leases = canonical_leases alive } in
  List.fold_left (fun s (p, t) -> insert cfg s p t) s' (cfg.inject clock)

let system (cfg : config) : state Explore.system =
  let initial =
    [ List.fold_left
        (fun s (p, t) -> insert cfg s p t)
        initial_state
        (cfg.inject 0) ]
  in
  let successors (s : state) : state list =
    let derivations =
      Ndlog_ts.enabled_insertions cfg.program s.db
      |> List.map (fun (pred, tuple) -> insert cfg s pred tuple)
    in
    let ticks = if s.clock >= cfg.horizon then [] else [ tick cfg s ] in
    derivations @ ticks
  in
  let pp ppf s =
    Fmt.pf ppf "clock=%d@.%a" s.clock Store.pp s.db
  in
  (* State identity goes through [Store.equal]/[Store.hash] for the
     database component (the index cache is not part of the state) and
     the canonical lease list; structural defaults would distinguish
     cache-warm from cache-cold databases. *)
  let lease_equal (((p, t), d) : lease) (((p', t'), d') : lease) =
    d = d' && String.equal p p' && Store.Tuple.equal t t'
  in
  let equal a b =
    a.clock = b.clock
    && Store.equal a.db b.db
    && List.equal lease_equal a.leases b.leases
  in
  let hash s =
    List.fold_left
      (fun acc ((p, t), d) ->
        (((acc * 31) + Hashtbl.hash (p, d)) * 31) + Store.Tuple.hash t)
      ((s.clock * 31) + Store.hash s.db)
      s.leases
  in
  Explore.make ~pp ~equal ~hash ~initial ~successors ()

(* Check a clock-indexed safety property over all reachable states. *)
let check ?(max_states = 100_000) (cfg : config)
    (inv : state -> bool) =
  Explore.check_invariant ~max_states (system cfg) inv
