(** Model checking soft-state protocols: Sections 4.2 and 4.3 of the
    paper combined — soft-state semantics expressed as a transition
    system "to directly produce system models for model checking
    tools".

    States couple a database with a discrete clock and the leases of
    soft tuples; transitions are single rule-consequence insertions and
    clock ticks (which expire leases and apply the environment's
    injections).  The clock horizon keeps the space finite, so safety
    properties can quantify over time. *)

type lease = (string * Ndlog.Store.Tuple.t) * int
(** A leased tuple and its expiry instant. *)

type state = {
  clock : int;
  db : Ndlog.Store.t;
  leases : lease list;  (** sorted (canonical) *)
}

val initial_state : state

type config = {
  program : Ndlog.Ast.program;
  horizon : int;  (** maximal clock value explored *)
  inject : int -> (string * Ndlog.Store.Tuple.t) list;
      (** external insertions occurring at each instant (refreshes,
          pings, failures-as-silence) *)
  lifetimes : (string * int) list;
}

val make_config :
  ?horizon:int ->
  ?inject:(int -> (string * Ndlog.Store.Tuple.t) list) ->
  Ndlog.Ast.program ->
  config
(** Lifetimes come from the program's [materialize] declarations. *)

val insert : config -> state -> string -> Ndlog.Store.Tuple.t -> state
(** Insert with lease bookkeeping (re-insertion refreshes). *)

val tick : config -> state -> state
(** Advance the clock, expire leases, apply injections. *)

val system : config -> state Explore.system

val check :
  ?max_states:int ->
  config ->
  (state -> bool) ->
  (state Explore.stats, state Explore.violation) result
(** Clock-indexed safety over all reachable states. *)
