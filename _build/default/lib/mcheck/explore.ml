(* A small explicit-state model checker (Section 4.3 of the paper:
   "leverage such transition system representation to directly interface
   with model checkers").

   Works over any transition system given as initial states plus a
   successor function.  Provides:

   - reachability statistics (states, transitions, depth);
   - invariant (safety) checking with shortest counterexample traces;
   - terminal-state collection (e.g. the stable assignments of an SPP);
   - lasso search: a reachable cycle lying entirely inside a region
     (e.g. the not-yet-converged states), which witnesses a possible
     non-terminating execution — the oscillation detector used by E9.

   State identity is the system's [equal]/[hash] pair.  The default
   (structural [(=)] / [Hashtbl.hash]) is only correct for pure-data
   states: a state type carrying derived mutable fields (e.g.
   {!Ndlog.Store.t}'s index cache, which {!Ndlog.Store.equal} and
   {!Ndlog.Store.hash} deliberately ignore) must supply its own pair,
   or the same logical state visits once per cache configuration.
   [Hashtbl.hash] also truncates at its default depth/size limits, so
   large states would collapse into a handful of buckets and the table
   would degrade to a linear scan — a full-depth [hash] keeps lookups
   O(bucket). *)

type 'state system = {
  initial : 'state list;
  successors : 'state -> 'state list;
  pp : 'state Fmt.t;
  equal : 'state -> 'state -> bool;
  hash : 'state -> int;
}

let make ?(pp = fun ppf _ -> Fmt.string ppf "<state>") ?(equal = ( = ))
    ?(hash = Hashtbl.hash) ~initial ~successors () =
  { initial; successors; pp; equal; hash }

(* Visited-state table: a hashtable keyed by the state hash, with
   bucket lists resolved by the state equality. *)
module Table = struct
  type 'state t = {
    equal : 'state -> 'state -> bool;
    hash : 'state -> int;
    tbl : (int, ('state * int) list ref) Hashtbl.t;
    (* hash -> (state, visitation id) bucket *)
  }

  let create ?(equal = ( = )) ?(hash = Hashtbl.hash) () =
    { equal; hash; tbl = Hashtbl.create 1024 }

  let of_system (sys : 'state system) =
    { equal = sys.equal; hash = sys.hash; tbl = Hashtbl.create 1024 }

  let find (t : 'state t) s =
    match Hashtbl.find_opt t.tbl (t.hash s) with
    | None -> None
    | Some bucket ->
      List.find_opt (fun (s', _) -> t.equal s' s) !bucket |> Option.map snd

  let add (t : 'state t) s id =
    let h = t.hash s in
    match Hashtbl.find_opt t.tbl h with
    | None -> Hashtbl.replace t.tbl h (ref [ (s, id) ])
    | Some bucket -> bucket := (s, id) :: !bucket

  let mem t s = find t s <> None
  let size t = Hashtbl.fold (fun _ b acc -> acc + List.length !b) t.tbl 0
  let buckets t = Hashtbl.length t.tbl

  let max_bucket t =
    Hashtbl.fold (fun _ b acc -> max acc (List.length !b)) t.tbl 0
end

type 'state stats = {
  states : int;
  transitions : int;
  max_depth : int;
  terminal : 'state list;  (* states with no successors *)
  truncated : bool;  (* the state bound was hit *)
}

(* Breadth-first exploration. *)
let explore ?(max_states = 100_000) (sys : 'state system) : 'state stats =
  let visited = Table.of_system sys in
  let queue = Queue.create () in
  let transitions = ref 0 in
  let max_depth = ref 0 in
  let terminal = ref [] in
  let truncated = ref false in
  let id = ref 0 in
  List.iter
    (fun s ->
      if not (Table.mem visited s) then begin
        Table.add visited s !id;
        incr id;
        Queue.push (s, 0) queue
      end)
    sys.initial;
  while not (Queue.is_empty queue) do
    let s, depth = Queue.pop queue in
    max_depth := max !max_depth depth;
    let succs = sys.successors s in
    transitions := !transitions + List.length succs;
    if succs = [] then terminal := s :: !terminal;
    List.iter
      (fun s' ->
        if not (Table.mem visited s') then
          if Table.size visited >= max_states then truncated := true
          else begin
            Table.add visited s' !id;
            incr id;
            Queue.push (s', depth + 1) queue
          end)
      succs
  done;
  {
    states = Table.size visited;
    transitions = !transitions;
    max_depth = !max_depth;
    terminal = List.rev !terminal;
    truncated = !truncated;
  }

(* ------------------------------------------------------------------ *)
(* Invariant checking with counterexample. *)

type 'state violation = {
  trace : 'state list;  (* from an initial state to the violating one *)
  violating : 'state;
}

let check_invariant ?(max_states = 100_000) (sys : 'state system)
    (inv : 'state -> bool) : ('state stats, 'state violation) result =
  (* BFS storing parent pointers for shortest counterexamples. *)
  let visited = Table.of_system sys in
  let parents : (int * 'state) option array ref = ref (Array.make 1024 None) in
  let store id v =
    if id >= Array.length !parents then begin
      let bigger = Array.make (2 * Array.length !parents) None in
      Array.blit !parents 0 bigger 0 (Array.length !parents);
      parents := bigger
    end;
    !parents.(id) <- v
  in
  let queue = Queue.create () in
  let transitions = ref 0 in
  let max_depth = ref 0 in
  let terminal = ref [] in
  let truncated = ref false in
  let id = ref 0 in
  let found = ref None in
  let violated s sid =
    found := Some (s, sid);
    raise Exit
  in
  let rebuild sid s =
    let rec go acc pid =
      match !parents.(pid) with
      | None -> acc
      | Some (pid', ps) -> go (ps :: acc) pid'
    in
    go [ s ] sid
  in
  try
    List.iter
      (fun s ->
        if not (Table.mem visited s) then begin
          Table.add visited s !id;
          store !id None;
          if not (inv s) then violated s !id;
          Queue.push (s, !id, 0) queue;
          incr id
        end)
      sys.initial;
    while not (Queue.is_empty queue) do
      let s, sid, depth = Queue.pop queue in
      max_depth := max !max_depth depth;
      let succs = sys.successors s in
      transitions := !transitions + List.length succs;
      if succs = [] then terminal := s :: !terminal;
      List.iter
        (fun s' ->
          if not (Table.mem visited s') then
            if Table.size visited >= max_states then truncated := true
            else begin
              Table.add visited s' !id;
              store !id (Some (sid, s));
              if not (inv s') then violated s' !id;
              Queue.push (s', !id, depth + 1) queue;
              incr id
            end)
        succs
    done;
    Ok
      {
        states = Table.size visited;
        transitions = !transitions;
        max_depth = !max_depth;
        terminal = List.rev !terminal;
        truncated = !truncated;
      }
  with Exit -> (
    match !found with
    | Some (s, sid) -> Error { trace = rebuild sid s; violating = s }
    | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Lasso detection. *)

type 'state lasso = {
  stem : 'state list;  (* from an initial state to the cycle entry *)
  cycle : 'state list;  (* the cycle, starting and ending implicit *)
}

(* Find a reachable cycle whose states all satisfy [within] (default:
   everything).  DFS with an explicit on-stack marker. *)
let find_lasso ?(max_states = 100_000) ?(within = fun _ -> true)
    (sys : 'state system) : 'state lasso option =
  let visited = Table.of_system sys in
  let result = ref None in
  let exception Found in
  let rec dfs path_on_stack s =
    if !result <> None then ()
    else if not (within s) then ()
    else if List.exists (fun s' -> sys.equal s' s) path_on_stack then begin
      (* cycle: the portion of the stack up to s *)
      let rec take acc = function
        | [] -> acc
        | x :: rest ->
          if sys.equal x s then x :: acc else take (x :: acc) rest
      in
      let cycle = take [] path_on_stack in
      result := Some { stem = []; cycle };
      raise Found
    end
    else if Table.mem visited s then ()
    else begin
      Table.add visited s 0;
      if Table.size visited > max_states then ()
      else List.iter (dfs (s :: path_on_stack)) (sys.successors s)
    end
  in
  (try List.iter (dfs []) sys.initial with Found -> ());
  !result

(* Can the system run forever while avoiding [good] states?  True iff a
   reachable cycle exists entirely within the bad region. *)
let can_avoid ?(max_states = 100_000) (sys : 'state system)
    ~(good : 'state -> bool) : 'state lasso option =
  find_lasso ~max_states ~within:(fun s -> not (good s)) sys
