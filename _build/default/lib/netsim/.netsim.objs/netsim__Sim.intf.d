lib/netsim/sim.mli: Format Random Topology
