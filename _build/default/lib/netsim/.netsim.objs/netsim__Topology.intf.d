lib/netsim/topology.mli: Fmt
