lib/netsim/sim.ml: Event_queue Format Hashtbl List Random Topology
