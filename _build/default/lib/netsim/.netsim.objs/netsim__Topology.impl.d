lib/netsim/topology.ml: Fmt Hashtbl List Printf Random Stdlib
