(* Network topologies: named nodes and directed links with per-link
   delay, metric cost, and an up/down flag (for failure injection).

   Topologies are mutable: the simulator flips link state during a run
   to model churn.  All generators produce symmetric graphs (both
   directions present) with deterministic structure. *)

type link = {
  src : string;
  dst : string;
  delay : float;
  cost : int;
  loss : float;  (* probability a message on this link is lost *)
  mutable up : bool;
}

type t = {
  mutable nodes : string list;
  links : (string * string, link) Hashtbl.t;
}

let create () = { nodes = []; links = Hashtbl.create 64 }

let add_node t n = if not (List.mem n t.nodes) then t.nodes <- t.nodes @ [ n ]

let add_link ?(delay = 1.0) ?(cost = 1) ?(loss = 0.0) t src dst =
  add_node t src;
  add_node t dst;
  Hashtbl.replace t.links (src, dst) { src; dst; delay; cost; loss; up = true }

let add_duplex ?delay ?cost ?loss t a b =
  add_link ?delay ?cost ?loss t a b;
  add_link ?delay ?cost ?loss t b a

let link t src dst = Hashtbl.find_opt t.links (src, dst)

let link_up t src dst =
  match link t src dst with Some l -> l.up | None -> false

let set_link_state t src dst up =
  match link t src dst with
  | Some l -> l.up <- up
  | None -> ()

let fail_duplex t a b =
  set_link_state t a b false;
  set_link_state t b a false

let restore_duplex t a b =
  set_link_state t a b true;
  set_link_state t b a true

let nodes t = t.nodes

let links t =
  Hashtbl.fold (fun _ l acc -> l :: acc) t.links []
  |> List.sort (fun a b -> Stdlib.compare (a.src, a.dst) (b.src, b.dst))

let up_links t = List.filter (fun l -> l.up) (links t)

let neighbors t n =
  List.filter_map
    (fun l -> if l.src = n && l.up then Some l.dst else None)
    (links t)

(* ------------------------------------------------------------------ *)
(* Generators (node names n0, n1, ...). *)

let node i = Printf.sprintf "n%d" i

let line ?(delay = 1.0) ?(cost = fun _ -> 1) k =
  let t = create () in
  for i = 0 to k - 1 do
    add_node t (node i)
  done;
  for i = 0 to k - 2 do
    add_duplex ~delay ~cost:(cost i) t (node i) (node (i + 1))
  done;
  t

let ring ?(delay = 1.0) ?(cost = fun _ -> 1) k =
  let t = line ~delay ~cost k in
  add_duplex ~delay ~cost:(cost (k - 1)) t (node (k - 1)) (node 0);
  t

let star ?(delay = 1.0) ?(cost = fun _ -> 1) k =
  let t = create () in
  add_node t (node 0);
  for i = 1 to k - 1 do
    add_duplex ~delay ~cost:(cost i) t (node 0) (node i)
  done;
  t

(* Random connected graph: spanning tree plus [extra] chords, seeded. *)
let random ?(seed = 42) ?(extra = 0) ?(delay = 1.0) ?(max_cost = 10) k =
  let st = Random.State.make [| seed |] in
  let t = create () in
  add_node t (node 0);
  for i = 1 to k - 1 do
    let parent = Random.State.int st i in
    add_duplex ~delay ~cost:(1 + Random.State.int st max_cost) t (node i)
      (node parent)
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < extra * 20 do
    incr attempts;
    let i = Random.State.int st k and j = Random.State.int st k in
    if i <> j && link t (node i) (node j) = None then begin
      add_duplex ~delay ~cost:(1 + Random.State.int st max_cost) t (node i)
        (node j);
      incr added
    end
  done;
  t

let pp ppf t =
  Fmt.pf ppf "nodes: %a@." Fmt.(list ~sep:(any " ") string) t.nodes;
  List.iter
    (fun l ->
      Fmt.pf ppf "  %s -> %s (cost %d, delay %g%s)@." l.src l.dst l.cost l.delay
        (if l.up then "" else ", DOWN"))
    (links t)
