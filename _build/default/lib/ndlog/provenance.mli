(** Provenance: derivation trees for derived tuples.

    NDlog's semantics is proof-theoretic (the paper's footnote 1: "the
    equivalence of NDlog's proof-theoretic semantics and operational
    semantics guarantees that FVN is sound").  [explain] reconstructs,
    for any tuple in a fixpoint database, a derivation tree: which rule
    fired, under which binding, from which premise tuples, down to base
    facts.  [Logic.Certify] compiles such trees into kernel-checked
    proofs. *)

(** A derivation: a base fact, or one rule application. *)
type derivation =
  | Fact of string * Store.Tuple.t
  | Step of step

and step = {
  rule : Ast.rule;
  binding : (string * Value.t) list;
      (** the full variable binding under which the rule fired *)
  premises : derivation list;
      (** derivations of the positive body atoms, in body order *)
  neg_checks : (string * Store.Tuple.t) list;
      (** negated atoms checked absent (recorded, not derived) *)
  conclusion : string * Store.Tuple.t;
}

val conclusion : derivation -> string * Store.Tuple.t

exception Not_derivable of string * Store.Tuple.t

type config

val make_config : Ast.program -> Store.t -> config
(** Precompute search state for repeated explanations against the same
    fixpoint database. *)

val explain :
  ?config:config ->
  Ast.program ->
  Store.t ->
  string ->
  Store.Tuple.t ->
  (derivation, string) result
(** [explain program fixpoint pred tuple] finds a well-founded
    derivation of [tuple].  For aggregate tuples the derivation records
    the witness row achieving the aggregate.  Errors when the tuple is
    not in the database or (pathologically) no derivation is found. *)

val size : derivation -> int
(** Number of nodes. *)

val depth : derivation -> int

val conclusions : (string * Store.Tuple.t) list -> derivation -> (string * Store.Tuple.t) list
(** All conclusions in the tree, accumulated onto the first argument. *)

val validate : config -> derivation -> bool
(** Re-check every step independently of the search: the recorded
    binding must satisfy the rule body, premises must conclude the
    body atoms, negative checks must hold in the fixpoint. *)

val pp : derivation Fmt.t
