(** Builtin functions usable in NDlog rule bodies.

    The paper's path-vector program uses [f_init] (fresh two-element
    path vector), [f_concatPath] (prepend a node), and [f_inPath]
    (membership test); the remainder are standard P2-style list and
    arithmetic helpers.  Functions are identified by name in
    {!Ast.Call} expressions; the parser treats any registered name
    applied to arguments as a call (everything else is an atom). *)

exception Unknown_function of string
(** Raised by {!apply} for unregistered names. *)

exception Arity_error of string * int
(** [Arity_error (name, got)]: wrong number of arguments. *)

val is_builtin : string -> bool
(** Is this name a registered builtin? *)

val apply : string -> Value.t list -> Value.t
(** Apply a builtin by name.

    Registered functions (aliases in parentheses):
    - [f_init s d] — the path vector [\[s; d\]] ([f_initPath])
    - [f_concatPath v p] — prepend [v] to path [p]
    - [f_inPath p v] — is [v] a member of [p]?
    - [f_size p] — list length ([f_length])
    - [f_first p] / [f_last p] — endpoints ([f_head])
    - [f_append p q], [f_reverse p], [f_empty ()], [f_cons v p]
    - [f_min a b] / [f_max a b] — binary min/max under {!Value.compare}
    - [f_abs n], [f_toStr v], [f_not b]

    @raise Unknown_function for unregistered names.
    @raise Arity_error on arity mismatch.
    @raise Value.Type_error on ill-sorted arguments. *)

val names : unit -> string list
(** All registered builtin names. *)
