(* Variable environments used during rule evaluation, plus the expression
   evaluator.  An environment maps rule variables to ground values. *)

module M = Map.Make (String)

type t = Value.t M.t

exception Unbound_variable of string

let empty : t = M.empty
let find_opt x (env : t) = M.find_opt x env
let mem x (env : t) = M.mem x env
let bind x v (env : t) : t = M.add x v env
let bindings (env : t) = M.bindings env
let of_list l : t = List.fold_left (fun e (x, v) -> M.add x v e) M.empty l

(* Consistent union: every binding of [a] added to [b], or [None] when
   some variable is bound to different values in the two.  Used by the
   batched delta join to recombine a per-tuple delta binding with an
   environment computed once for the tuple's whole group. *)
let merge (a : t) (b : t) : t option =
  let exception Conflict in
  try
    Some
      (M.fold
         (fun x v acc ->
           match M.find_opt x acc with
           | None -> M.add x v acc
           | Some v' -> if Value.equal v v' then acc else raise Conflict)
         a b)
  with Conflict -> None

let find x env =
  match M.find_opt x env with
  | Some v -> v
  | None -> raise (Unbound_variable x)

let arith op a b =
  let x = Value.as_int a and y = Value.as_int b in
  match op with
  | Ast.Add -> Value.Int (x + y)
  | Ast.Sub -> Value.Int (x - y)
  | Ast.Mul -> Value.Int (x * y)
  | Ast.Div ->
    if y = 0 then raise (Value.Type_error ("non-zero divisor", b))
    else Value.Int (x / y)
  | Ast.Mod ->
    if y = 0 then raise (Value.Type_error ("non-zero divisor", b))
    else Value.Int (x mod y)

let rec eval env (e : Ast.expr) : Value.t =
  match e with
  | Ast.Var x -> find x env
  | Ast.Const v -> v
  | Ast.Call (f, args) -> (
    match Builtins.apply f (List.map (eval env) args) with
    (* Canonicalize freshly built lists at the construction site: a
       fixpoint re-derives the same path vectors over and over, and
       interning here makes each re-derivation physically equal to the
       resident copy — every later comparison short-circuits on
       pointer equality instead of walking the spine.  Scalars are
       left alone: a hash-cons probe costs more than their compare. *)
    | Value.List _ as v when !Intern.enabled -> Intern.canon v
    | v -> v)
  | Ast.Binop (op, a, b) -> arith op (eval env a) (eval env b)

let eval_cmp (c : Ast.cmp) a b =
  let k = Value.compare a b in
  match c with
  | Ast.Eq -> k = 0
  | Ast.Ne -> k <> 0
  | Ast.Lt -> k < 0
  | Ast.Le -> k <= 0
  | Ast.Gt -> k > 0
  | Ast.Ge -> k >= 0

(* [match_arg env pattern v] extends [env] so that [pattern] evaluates to
   [v], or returns [None] if impossible.  A bare unbound variable binds;
   anything else must evaluate (under [env]) to exactly [v]. *)
let match_arg env (pattern : Ast.expr) (v : Value.t) : t option =
  match pattern with
  | Ast.Var x -> (
    match find_opt x env with
    | None -> Some (bind x v env)
    | Some v' -> if Value.equal v v' then Some env else None)
  | _ -> (
    match eval env pattern with
    | v' -> if Value.equal v v' then Some env else None
    | exception Unbound_variable _ -> None)

(* Match an argument list against a ground tuple, left to right. *)
let match_args env (patterns : Ast.expr list) (tuple : Value.t array) : t option =
  let n = List.length patterns in
  if n <> Array.length tuple then None
  else
    let rec go env i = function
      | [] -> Some env
      | p :: rest -> (
        match match_arg env p tuple.(i) with
        | Some env' -> go env' (i + 1) rest
        | None -> None)
    in
    go env 0 patterns
