(* Provenance: derivation trees for derived tuples.

   NDlog's semantics is proof-theoretic (the paper, footnote 1: "the
   equivalence of NDlog's proof-theoretic semantics and operational
   semantics guarantees that FVN is sound").  This module makes that
   concrete: [explain] reconstructs, for any tuple in the fixpoint, a
   derivation tree — which rule fired, under which variable binding,
   from which premise tuples — down to base facts.

   Derivations are checkable objects: [Logic.Certify] (in the logic
   library) compiles a derivation into a kernel-checked proof of the
   ground atom from the program's completion and the base facts. *)

type derivation =
  | Fact of string * Store.Tuple.t
  | Step of step

and step = {
  rule : Ast.rule;
  (* The full variable binding under which the rule fired. *)
  binding : (string * Value.t) list;
  (* Derivations of the positive body atoms, in body order. *)
  premises : derivation list;
  (* Negated atoms checked absent (recorded, not derived). *)
  neg_checks : (string * Store.Tuple.t) list;
  conclusion : string * Store.Tuple.t;
}

let conclusion = function
  | Fact (p, t) -> (p, t)
  | Step s -> s.conclusion

exception Not_derivable of string * Store.Tuple.t

(* ------------------------------------------------------------------ *)
(* Search. *)

(* [explain] works against the full fixpoint database [db] (so premise
   membership checks are O(log n)) and the set of base facts.  Cycles
   are impossible in a least-fixpoint database when the search insists
   on strictly "smaller" premises; we enforce well-foundedness by
   forbidding a (pred, tuple) from appearing twice on the current
   search path. *)

type config = {
  program : Ast.program;
  db : Store.t;  (* the fixpoint *)
  base : Store.t;  (* the original facts *)
  agg_preds : string list;
}

let make_config (program : Ast.program) (db : Store.t) : config =
  let agg_preds =
    List.filter_map
      (fun (r : Ast.rule) ->
        if Ast.has_aggregate r.Ast.head then Some r.Ast.head.Ast.head_pred
        else None)
      program.Ast.rules
  in
  {
    program;
    db;
    base = Store.of_facts program.Ast.facts;
    agg_preds;
  }

(* All rule bindings (environments) that derive exactly [tuple] via
   [rule]: match the head against the tuple, then check the body in the
   fixpoint. *)
let rule_bindings cfg (rule : Ast.rule) (tuple : Store.Tuple.t) : Env.t list =
  let head_args =
    List.map
      (function
        | Ast.Plain e -> e
        | Ast.Agg _ -> invalid_arg "rule_bindings: aggregate head")
      rule.Ast.head.Ast.head_args
  in
  match Env.match_args Env.empty head_args tuple with
  | None -> []
  | Some env0 ->
    (* Evaluate the body under the partial head binding. *)
    Eval.body_envs cfg.db rule.Ast.body
    |> List.filter_map (fun env ->
           (* env must agree with env0 on shared variables, and the head
              must evaluate to the tuple. *)
           let compatible =
             List.for_all
               (fun (x, v) ->
                 match Env.find_opt x env with
                 | Some v' -> Value.equal v v'
                 | None -> true)
               (Env.bindings env0)
           in
           if not compatible then None
           else
             let merged =
               List.fold_left
                 (fun acc (x, v) -> Env.bind x v acc)
                 env (Env.bindings env0)
             in
             let t' = Eval.head_tuple merged rule.Ast.head in
             if Store.Tuple.equal t' tuple then Some merged else None)

let rec explain_path cfg (path : (string * Store.Tuple.t) list) pred tuple :
    derivation =
  if Store.mem pred tuple cfg.base then Fact (pred, tuple)
  else if List.exists (fun (p, t) -> p = pred && Store.Tuple.equal t tuple) path
  then raise (Not_derivable (pred, tuple))
  else if List.mem pred cfg.agg_preds then explain_aggregate cfg path pred tuple
  else begin
    let path = (pred, tuple) :: path in
    let candidates =
      List.filter
        (fun (r : Ast.rule) ->
          r.Ast.head.Ast.head_pred = pred && not (Ast.has_aggregate r.Ast.head))
        cfg.program.Ast.rules
    in
    let rec try_rules = function
      | [] -> raise (Not_derivable (pred, tuple))
      | rule :: rest -> (
        let rec try_bindings = function
          | [] -> try_rules rest
          | env :: more -> (
            match step_of cfg path rule env pred tuple with
            | Some d -> d
            | None -> try_bindings more)
        in
        try_bindings (rule_bindings cfg rule tuple))
    in
    try_rules candidates
  end

and step_of cfg path (rule : Ast.rule) env pred tuple : derivation option =
  try
    let premises =
      List.filter_map
        (function
          | Ast.Pos (a : Ast.atom) ->
            let t = Array.of_list (List.map (Env.eval env) a.Ast.args) in
            Some (explain_path cfg path a.Ast.pred t)
          | Ast.Neg _ | Ast.Assign _ | Ast.Cond _ -> None)
        rule.Ast.body
    in
    let neg_checks =
      List.filter_map
        (function
          | Ast.Neg (a : Ast.atom) ->
            Some (a.Ast.pred, Array.of_list (List.map (Env.eval env) a.Ast.args))
          | _ -> None)
        rule.Ast.body
    in
    Some
      (Step
         {
           rule;
           binding = Env.bindings env;
           premises;
           neg_checks;
           conclusion = (pred, tuple);
         })
  with Not_derivable _ -> None

(* An aggregate tuple's provenance: the rule, plus the derivation of the
   witness row achieving the aggregate (for min/max) or of every
   contributing row (count/sum). *)
and explain_aggregate cfg path pred tuple : derivation =
  let path = (pred, tuple) :: path in
  let rules =
    List.filter
      (fun (r : Ast.rule) ->
        r.Ast.head.Ast.head_pred = pred && Ast.has_aggregate r.Ast.head)
      cfg.program.Ast.rules
  in
  let rec try_rules = function
    | [] -> raise (Not_derivable (pred, tuple))
    | (rule : Ast.rule) :: rest -> (
      (* Find body environments whose group key matches the tuple. *)
      let envs = Eval.body_envs cfg.db rule.Ast.body in
      let witnesses =
        List.filter
          (fun env ->
            (* plain head args must match the tuple's key columns *)
            List.for_all2
              (fun arg v ->
                match arg with
                | Ast.Plain e -> Value.equal (Env.eval env e) v
                | Ast.Agg _ -> true)
              rule.Ast.head.Ast.head_args (Array.to_list tuple))
          envs
      in
      (* For min/max the witness is a row achieving the value. *)
      let achieving =
        List.filter
          (fun env ->
            List.for_all2
              (fun arg v ->
                match arg with
                | Ast.Plain _ -> true
                | Ast.Agg ((Ast.Min | Ast.Max), x) ->
                  Value.equal (Env.find x env) v
                | Ast.Agg (_, _) -> true)
              rule.Ast.head.Ast.head_args (Array.to_list tuple))
          witnesses
      in
      let chosen =
        match achieving with e :: _ -> Some e | [] -> None
      in
      match chosen with
      | None -> try_rules rest
      | Some env -> (
        match step_of cfg path rule env pred tuple with
        | Some d -> d
        | None -> try_rules rest))
  in
  try_rules rules

let explain ?config (program : Ast.program) (db : Store.t) pred tuple :
    (derivation, string) result =
  let cfg = match config with Some c -> c | None -> make_config program db in
  if not (Store.mem pred tuple db) then
    Error (Fmt.str "%s%a is not in the database" pred Store.Tuple.pp tuple)
  else
    match explain_path cfg [] pred tuple with
    | d -> Ok d
    | exception Not_derivable (p, t) ->
      Error (Fmt.str "no derivation found for %s%a" p Store.Tuple.pp t)

(* ------------------------------------------------------------------ *)
(* Inspection. *)

let rec size = function
  | Fact _ -> 1
  | Step s -> 1 + List.fold_left (fun acc d -> acc + size d) 0 s.premises

let rec depth = function
  | Fact _ -> 1
  | Step s -> 1 + List.fold_left (fun acc d -> max acc (depth d)) 0 s.premises

(* Every (pred, tuple) consequence in the tree, leaves first. *)
let rec conclusions acc = function
  | Fact (p, t) -> (p, t) :: acc
  | Step s ->
    s.conclusion :: List.fold_left conclusions acc s.premises

(* A derivation is locally sound when every step's conclusion follows
   from its premises under the recorded binding (re-checked against the
   rule, independently of the search). *)
let rec validate cfg = function
  | Fact (p, t) -> Store.mem p t cfg.base
  | Step s ->
    let env = Env.of_list s.binding in
    let head_ok =
      (not (Ast.has_aggregate s.rule.Ast.head))
      && Store.Tuple.equal
           (Eval.head_tuple env s.rule.Ast.head)
           (snd s.conclusion)
      || Ast.has_aggregate s.rule.Ast.head
    in
    let body_ok =
      List.for_all
        (function
          | Ast.Pos (a : Ast.atom) ->
            let t = Array.of_list (List.map (Env.eval env) a.Ast.args) in
            List.exists
              (fun d ->
                let p', t' = conclusion d in
                p' = a.Ast.pred && Store.Tuple.equal t' t)
              s.premises
          | Ast.Neg (a : Ast.atom) ->
            let t = Array.of_list (List.map (Env.eval env) a.Ast.args) in
            not (Store.mem a.Ast.pred t cfg.db)
          | Ast.Assign (x, e) -> Value.equal (Env.find x env) (Env.eval env e)
          | Ast.Cond (c, a, b) ->
            Env.eval_cmp c (Env.eval env a) (Env.eval env b))
        s.rule.Ast.body
    in
    head_ok && body_ok && List.for_all (validate cfg) s.premises

let rec pp ?(indent = 0) ppf d =
  let pad = String.make indent ' ' in
  match d with
  | Fact (p, t) -> Fmt.pf ppf "%sfact %s%a@." pad p Store.Tuple.pp t
  | Step s ->
    let p, t = s.conclusion in
    Fmt.pf ppf "%s%s%a  [rule %s]@." pad p Store.Tuple.pp t
      (match s.rule.Ast.rule_name with Some n -> n | None -> "?");
    List.iter (pp ~indent:(indent + 2) ppf) s.premises;
    List.iter
      (fun (np, nt) -> Fmt.pf ppf "%s  absent %s%a@." pad np Store.Tuple.pp nt)
      s.neg_checks

let pp ppf d = pp ~indent:0 ppf d
