(* Centralized bottom-up evaluation of NDlog programs.

   Two evaluators over the same rule-application core:
   - [naive]: re-derives everything from the full database each round;
   - [seminaive]: classic delta iteration, per stratum.

   Both respect the stratification computed by {!Analysis}: strata are
   evaluated bottom-up; aggregate rules of a stratum run once at stratum
   entry (their body predicates are strictly lower, hence complete);
   remaining rules run to fixpoint.

   Joins are index-aware: a positive body literal whose argument
   positions are already ground under the current environment is
   answered from a {!Store.lookup} secondary index instead of a full
   relation scan; literals with no ground position (and delta literals,
   whose relation is the small delta set itself) fall back to the scan.
   Rule bodies are reordered most-bound-first ([order_body]) so that
   ground positions exist as early as possible.  Both optimizations are
   observable through {!stats} and can be switched off ([use_indexes],
   [use_reordering]) — the fixpoint is identical either way, which the
   test suite checks by property.

   Evaluation is guarded by [max_rounds]; a program that fails to reach a
   fixpoint within the bound (e.g. distance-vector count-to-infinity) is
   reported as not converged rather than looping forever. *)

module Sset = Set.Make (String)

type outcome = {
  db : Store.t;
  rounds : int;  (* total fixpoint rounds across strata *)
  derivations : int;  (* head tuples produced, counting duplicates *)
  converged : bool;
}

exception Eval_error of string

(* ------------------------------------------------------------------ *)
(* Instrumentation and switches. *)

type stats = {
  index_hits : int;  (* joins answered from a secondary index *)
  scans : int;  (* joins answered by a full relation scan *)
  enumerated : int;  (* candidate tuples visited by joins *)
  matched : int;  (* candidates that unified with the pattern *)
}

let use_indexes = ref true
let use_reordering = ref true

let st_index_hits = ref 0
let st_scans = ref 0
let st_enumerated = ref 0
let st_matched = ref 0

let reset_stats () =
  st_index_hits := 0;
  st_scans := 0;
  st_enumerated := 0;
  st_matched := 0

let stats () =
  {
    index_hits = !st_index_hits;
    scans = !st_scans;
    enumerated = !st_enumerated;
    matched = !st_matched;
  }

let pp_stats ppf s =
  Fmt.pf ppf "index_hits=%d scans=%d enumerated=%d matched=%d" s.index_hits
    s.scans s.enumerated s.matched

(* ------------------------------------------------------------------ *)
(* Rule application. *)

(* The argument positions of [args] that are ground under [env], with
   their values.  Only bare variables and constants are considered —
   complex expressions are left to [Env.match_args], which may only
   evaluate them against a concrete candidate tuple (evaluating eagerly
   here could raise where a scan over an empty relation would not). *)
let ground_positions env (args : Ast.expr list) : (int * Value.t) list =
  let rec go i = function
    | [] -> []
    | Ast.Const v :: rest -> (i, v) :: go (i + 1) rest
    | Ast.Var x :: rest -> (
      match Env.find_opt x env with
      | Some v -> (i, v) :: go (i + 1) rest
      | None -> go (i + 1) rest)
    | _ :: rest -> go (i + 1) rest
  in
  go 0 args

(* The candidate tuples for matching [args] against [pred] under [env]:
   an indexed lookup when some argument position is ground, the full
   relation otherwise.  The single source of index-aware candidate
   selection — shared by [body_envs] and the strand executor
   ({!Plan.execute}). *)
let candidates (db : Store.t) env pred (args : Ast.expr list) : Store.Tset.t =
  match if !use_indexes then ground_positions env args else [] with
  | [] ->
    incr st_scans;
    Store.relation pred db
  | bound ->
    incr st_index_hits;
    Store.lookup pred ~cols:(List.map fst bound) ~key:(List.map snd bound) db

(* One join step: extend [env] with every tuple of [pred] matching
   [args].  Exposed for the dataflow strands. *)
let join_envs (db : Store.t) env pred (args : Ast.expr list) : Env.t list =
  Store.Tset.fold
    (fun tuple acc ->
      incr st_enumerated;
      match Env.match_args env args tuple with
      | Some env' ->
        incr st_matched;
        env' :: acc
      | None -> acc)
    (candidates db env pred args)
    []

(* Enumerate all satisfying environments for [body] against [db].
   [delta] optionally replaces the relation read by the body literal at
   the given index, implementing semi-naive evaluation. *)
let body_envs (db : Store.t) ?delta (body : Ast.lit list) : Env.t list =
  let rec go env idx lits acc =
    match lits with
    | [] -> env :: acc
    | lit :: rest -> (
      match lit with
      | Ast.Pos a ->
        let rel =
          match delta with
          | Some (j, d) when j = idx ->
            incr st_scans;
            d
          | _ -> candidates db env a.pred a.args
        in
        Store.Tset.fold
          (fun tuple acc ->
            incr st_enumerated;
            match Env.match_args env a.args tuple with
            | Some env' ->
              incr st_matched;
              go env' (idx + 1) rest acc
            | None -> acc)
          rel acc
      | Ast.Neg a ->
        let tuple =
          Array.of_list (List.map (Env.eval env) a.args)
        in
        if Store.mem a.pred tuple db then acc
        else go env (idx + 1) rest acc
      | Ast.Assign (x, e) -> (
        let v = Env.eval env e in
        match Env.find_opt x env with
        | None -> go (Env.bind x v env) (idx + 1) rest acc
        | Some v' -> if Value.equal v v' then go env (idx + 1) rest acc else acc)
      | Ast.Cond (c, a, b) ->
        if Env.eval_cmp c (Env.eval env a) (Env.eval env b) then
          go env (idx + 1) rest acc
        else acc)
  in
  go Env.empty 0 body []

(* Instantiate a plain (aggregate-free) head under [env]. *)
let head_tuple env (h : Ast.head) : Store.Tuple.t =
  Array.of_list
    (List.map
       (function
         | Ast.Plain e -> Env.eval env e
         | Ast.Agg _ -> raise (Eval_error "aggregate head in plain context"))
       h.head_args)

(* Positions (body-literal indexes) whose positive atom's predicate is in
   [rec_preds]; used to pick delta positions. *)
let delta_positions rec_preds (body : Ast.lit list) : int list =
  List.mapi (fun i lit -> (i, lit)) body
  |> List.filter_map (fun (i, lit) ->
         match lit with
         | Ast.Pos a when Sset.mem a.Ast.pred rec_preds -> Some i
         | _ -> None)

(* ------------------------------------------------------------------ *)
(* Join planning: greedy most-bound-first literal ordering.

   Reordering preserves the satisfying-environment set: positive atoms
   constrain the same variables whether they bind or filter, and a
   literal is only scheduled once every variable it *needs* (negated
   atoms, comparisons, assignment right-hand sides) is bound.  For any
   safe rule the earliest remaining literal in source order is always
   eligible — everything before it has already run — so the scheduler
   is total. *)

let lit_vars (l : Ast.lit) : Ast.Sset.t =
  Ast.vars_of_lit Ast.Sset.empty l

let needs_of (l : Ast.lit) : Ast.Sset.t =
  match l with
  | Ast.Pos _ -> Ast.Sset.empty  (* joins bind their unbound variables *)
  | Ast.Neg a -> Ast.vars_of_atom Ast.Sset.empty a
  | Ast.Cond (_, e1, e2) ->
    Ast.vars_of_expr (Ast.vars_of_expr Ast.Sset.empty e1) e2
  | Ast.Assign (_, e) -> Ast.vars_of_expr Ast.Sset.empty e

(* How many argument positions of a positive atom are ground once the
   variables in [bound] are: bare bound variables and constants. *)
let boundness bound (a : Ast.atom) : int =
  List.fold_left
    (fun n (e : Ast.expr) ->
      match e with
      | Ast.Const _ -> n + 1
      | Ast.Var x when Ast.Sset.mem x bound -> n + 1
      | _ -> n)
    0 a.Ast.args

(* Reorder [body] for evaluation: cheap filters (assignments,
   comparisons, negations) run as soon as their inputs are bound;
   positive atoms are scheduled most-bound-first, breaking ties by
   smaller relation ([card]) and then source order.  [bound] seeds the
   variable set (e.g. the variables a delta literal binds). *)
let order_body ?(card = fun _ -> 0) ?(bound = Ast.Sset.empty)
    (body : Ast.lit list) : Ast.lit list =
  let rank bound (l : Ast.lit) =
    (* Lower ranks first; eligibility already checked. *)
    match l with
    | Ast.Assign _ -> (0, 0, 0)
    | Ast.Cond _ -> (1, 0, 0)
    | Ast.Neg _ -> (2, 0, 0)
    | Ast.Pos a -> (3, List.length a.Ast.args - boundness bound a, card a.Ast.pred)
  in
  let rec go bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let eligible =
        List.filter
          (fun (_, l) -> Ast.Sset.subset (needs_of l) bound)
          remaining
      in
      let pick =
        match eligible with
        | [] -> List.hd remaining  (* unsafe rule: fall back to source order *)
        | e :: es ->
          (* Source order is preserved by [filter], so ties keep the
             earliest literal. *)
          List.fold_left
            (fun ((_, bl) as best) ((_, l) as cand) ->
              if Stdlib.compare (rank bound l) (rank bound bl) < 0 then cand
              else best)
            e es
      in
      let i, l = pick in
      let remaining = List.filter (fun (j, _) -> j <> i) remaining in
      go (Ast.Sset.union bound (lit_vars l)) remaining (l :: acc)
  in
  if not !use_reordering then body
  else go bound (List.mapi (fun i l -> (i, l)) body) []

(* The variables a positive atom binds when it is evaluated first (its
   bare variable arguments). *)
let atom_binds (a : Ast.atom) : Ast.Sset.t =
  List.fold_left
    (fun s (e : Ast.expr) ->
      match e with Ast.Var x -> Ast.Sset.add x s | _ -> s)
    Ast.Sset.empty a.Ast.args

(* ------------------------------------------------------------------ *)
(* Aggregates. *)

(* Aggregate group keys: plain head-argument values ([None] marks an
   aggregate position).  Compared with Value.compare so grouping uses
   the engine's value equality, never Stdlib.compare's independent
   structural notion. *)
module Kmap = Map.Make (struct
  type t = Value.t option list

  let compare_opt a b =
    match a, b with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> Value.compare x y

  let rec compare a b =
    match a, b with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: a', y :: b' ->
      let c = compare_opt x y in
      if c <> 0 then c else compare a' b'
end)

let agg_fold (a : Ast.agg) (vs : Value.t list) : Value.t =
  match a, vs with
  | _, [] -> raise (Eval_error "aggregate over empty group")
  | Ast.Min, v :: rest ->
    List.fold_left (fun m v -> if Value.compare v m < 0 then v else m) v rest
  | Ast.Max, v :: rest ->
    List.fold_left (fun m v -> if Value.compare v m > 0 then v else m) v rest
  | Ast.Count, vs -> Value.Int (List.length vs)
  | Ast.Sum, vs ->
    Value.Int (List.fold_left (fun acc v -> acc + Value.as_int v) 0 vs)

(* Evaluate an aggregate rule against the full database: group satisfying
   environments by the plain head arguments, fold the aggregate, emit one
   tuple per group. *)
let apply_agg_rule db (r : Ast.rule) : Store.Tuple.t list =
  let envs = body_envs db (order_body ~card:(fun p -> Store.cardinal p db) r.body) in
  let groups =
    List.fold_left
      (fun groups env ->
        let key =
          List.map
            (function
              | Ast.Plain e -> Some (Env.eval env e)
              | Ast.Agg _ -> None)
            r.head.head_args
        in
        let aggvals =
          List.filter_map
            (function
              | Ast.Plain _ -> None
              | Ast.Agg (_, x) -> Some (Env.find x env))
            r.head.head_args
        in
        Kmap.update key
          (function
            | None -> Some [ aggvals ]
            | Some rows -> Some (aggvals :: rows))
          groups)
      Kmap.empty envs
  in
  Kmap.fold
    (fun key rows acc ->
      (* Recombine: plain positions from the key, aggregate positions
         folded over the collected column. *)
      let n_aggs = List.length (List.hd rows) in
      let columns =
        List.init n_aggs (fun i -> List.map (fun row -> List.nth row i) rows)
      in
      let rec build args key cols =
        match args, key with
        | [], [] -> []
        | Ast.Plain _ :: args', Some v :: key' -> v :: build args' key' cols
        | Ast.Agg (a, _) :: args', None :: key' -> (
          match cols with
          | col :: cols' -> agg_fold a col :: build args' key' cols'
          | [] -> raise (Eval_error "aggregate column mismatch"))
        | _ -> raise (Eval_error "aggregate head shape mismatch")
      in
      Array.of_list (build r.head.head_args key columns) :: acc)
    groups []

(* ------------------------------------------------------------------ *)
(* Fixpoint drivers. *)

let rules_of_stratum (p : Ast.program) stratum =
  List.filter (fun (r : Ast.rule) -> List.mem r.head.head_pred stratum) p.rules

let split_agg rules =
  List.partition (fun (r : Ast.rule) -> Ast.has_aggregate r.head) rules

(* Derived tuples of applying [rules] with optional per-position deltas
   restricted to [rec_preds].  Bodies are join-planned per application:
   full applications are ordered from an empty binding, delta
   applications move the delta literal to the front (it is the small
   relation) and order the remaining literals under the variables the
   delta binds. *)
let apply_plain_rules db ?deltas ~rec_preds rules ~count =
  let card p = Store.cardinal p db in
  List.fold_left
    (fun acc (r : Ast.rule) ->
      let produce acc envs =
        List.fold_left
          (fun acc env ->
            incr count;
            Store.add r.head.head_pred (head_tuple env r.head) acc)
          acc envs
      in
      match deltas with
      | None -> produce acc (body_envs db (order_body ~card r.body))
      | Some delta_db ->
        let positions = delta_positions rec_preds r.body in
        List.fold_left
          (fun acc i ->
            let delta_lit, delta_atom =
              match List.nth r.body i with
              | Ast.Pos a as l -> (l, a)
              | _ -> assert false
            in
            let d = Store.relation delta_atom.Ast.pred delta_db in
            if Store.Tset.is_empty d then acc
            else
              let rest = List.filteri (fun j _ -> j <> i) r.body in
              let body =
                delta_lit :: order_body ~card ~bound:(atom_binds delta_atom) rest
              in
              produce acc (body_envs db ~delta:(0, d) body))
          acc positions)
    Store.empty rules

(* Evaluate one stratum to fixpoint, semi-naively. *)
let eval_stratum_seminaive db stratum (p : Ast.program) ~max_rounds ~rounds
    ~count =
  let rules = rules_of_stratum p stratum in
  let agg_rules, plain_rules = split_agg rules in
  (* Aggregate rules see only lower strata: run them once. *)
  let db =
    List.fold_left
      (fun db r ->
        List.fold_left
          (fun db t ->
            incr count;
            Store.add r.Ast.head.Ast.head_pred t db)
          db (apply_agg_rule db r))
      db agg_rules
  in
  let rec_preds =
    List.fold_left
      (fun s (r : Ast.rule) -> Sset.add r.head.head_pred s)
      Sset.empty plain_rules
  in
  (* Initial round: full evaluation of the stratum's plain rules. *)
  let derived = apply_plain_rules db ~rec_preds plain_rules ~count in
  let delta = Store.diff derived db in
  let db = Store.union db delta in
  incr rounds;
  let rec loop db delta =
    if Store.is_empty delta then (db, true)
    else if !rounds >= max_rounds then (db, false)
    else begin
      incr rounds;
      let derived =
        apply_plain_rules db ~deltas:delta ~rec_preds plain_rules ~count
      in
      let delta' = Store.diff derived db in
      loop (Store.union db delta') delta'
    end
  in
  loop db delta

(* Evaluate one stratum to fixpoint, naively (for differential testing
   and the E7 bench). *)
let eval_stratum_naive db stratum (p : Ast.program) ~max_rounds ~rounds ~count
    =
  let rules = rules_of_stratum p stratum in
  let agg_rules, plain_rules = split_agg rules in
  let db =
    List.fold_left
      (fun db r ->
        List.fold_left
          (fun db t ->
            incr count;
            Store.add r.Ast.head.Ast.head_pred t db)
          db (apply_agg_rule db r))
      db agg_rules
  in
  let rec loop db =
    if !rounds >= max_rounds then (db, false)
    else begin
      incr rounds;
      let derived = apply_plain_rules db ~rec_preds:Sset.empty plain_rules ~count in
      let delta = Store.diff derived db in
      if Store.is_empty delta then (db, true)
      else loop (Store.union db delta)
    end
  in
  loop db

let eval_with stratum_eval ?(max_rounds = 10_000) (p : Ast.program)
    (info : Analysis.info) (db : Store.t) : outcome =
  let rounds = ref 0 and count = ref 0 in
  let db, converged =
    List.fold_left
      (fun (db, ok) stratum ->
        if not ok then (db, ok)
        else stratum_eval db stratum p ~max_rounds ~rounds ~count)
      (db, true) info.Analysis.strata
  in
  { db; rounds = !rounds; derivations = !count; converged }

let seminaive ?max_rounds p info db =
  eval_with eval_stratum_seminaive ?max_rounds p info db

let naive ?max_rounds p info db = eval_with eval_stratum_naive ?max_rounds p info db

(* Analyze and evaluate a self-contained program (facts included). *)
let run ?max_rounds ?(extra_facts = []) (p : Ast.program) :
    (outcome, Analysis.error) result =
  match Analysis.analyze p with
  | Error e -> Error e
  | Ok info ->
    let db = Store.of_facts (p.facts @ extra_facts) in
    Ok (seminaive ?max_rounds p info db)

let run_exn ?max_rounds ?extra_facts p =
  match run ?max_rounds ?extra_facts p with
  | Ok o -> o
  | Error e -> invalid_arg (Fmt.str "NDlog evaluation failed: %a" Analysis.pp_error e)

(* Convenience: parse source text and run it. *)
let run_source ?max_rounds src : (outcome, string) result =
  match Parser.parse_program src with
  | Error e -> Error e
  | Ok p -> (
    match run ?max_rounds p with
    | Ok o -> Ok o
    | Error e -> Error (Fmt.str "%a" Analysis.pp_error e))
