(* Centralized bottom-up evaluation of NDlog programs.

   Two evaluators over the same rule-application core:
   - [naive]: re-derives everything from the full database each round;
   - [seminaive]: classic delta iteration, per stratum.

   Both respect the stratification computed by {!Analysis}: strata are
   evaluated bottom-up; aggregate rules of a stratum run once at stratum
   entry (their body predicates are strictly lower, hence complete);
   remaining rules run to fixpoint.

   Evaluation is guarded by [max_rounds]; a program that fails to reach a
   fixpoint within the bound (e.g. distance-vector count-to-infinity) is
   reported as not converged rather than looping forever. *)

type outcome = {
  db : Store.t;
  rounds : int;  (* total fixpoint rounds across strata *)
  derivations : int;  (* head tuples produced, counting duplicates *)
  converged : bool;
}

exception Eval_error of string

(* ------------------------------------------------------------------ *)
(* Rule application. *)

(* Enumerate all satisfying environments for [body] against [db].
   [delta] optionally replaces the relation read by the body literal at
   the given index, implementing semi-naive evaluation. *)
let body_envs (db : Store.t) ?delta (body : Ast.lit list) : Env.t list =
  let rec go env idx lits acc =
    match lits with
    | [] -> env :: acc
    | lit :: rest -> (
      match lit with
      | Ast.Pos a ->
        let rel =
          match delta with
          | Some (j, d) when j = idx -> d
          | _ -> Store.relation a.pred db
        in
        Store.Tset.fold
          (fun tuple acc ->
            match Env.match_args env a.args tuple with
            | Some env' -> go env' (idx + 1) rest acc
            | None -> acc)
          rel acc
      | Ast.Neg a ->
        let tuple =
          Array.of_list (List.map (Env.eval env) a.args)
        in
        if Store.mem a.pred tuple db then acc
        else go env (idx + 1) rest acc
      | Ast.Assign (x, e) -> (
        let v = Env.eval env e in
        match Env.find_opt x env with
        | None -> go (Env.bind x v env) (idx + 1) rest acc
        | Some v' -> if Value.equal v v' then go env (idx + 1) rest acc else acc)
      | Ast.Cond (c, a, b) ->
        if Env.eval_cmp c (Env.eval env a) (Env.eval env b) then
          go env (idx + 1) rest acc
        else acc)
  in
  go Env.empty 0 body []

(* Instantiate a plain (aggregate-free) head under [env]. *)
let head_tuple env (h : Ast.head) : Store.Tuple.t =
  Array.of_list
    (List.map
       (function
         | Ast.Plain e -> Env.eval env e
         | Ast.Agg _ -> raise (Eval_error "aggregate head in plain context"))
       h.head_args)

(* Positions (body-literal indexes) whose positive atom's predicate is in
   [rec_preds]; used to pick delta positions. *)
let delta_positions rec_preds (body : Ast.lit list) : int list =
  List.mapi (fun i lit -> (i, lit)) body
  |> List.filter_map (fun (i, lit) ->
         match lit with
         | Ast.Pos a when List.mem a.Ast.pred rec_preds -> Some i
         | _ -> None)

(* ------------------------------------------------------------------ *)
(* Aggregates. *)

module Kmap = Map.Make (struct
  type t = Value.t option list

  let compare = Stdlib.compare
end)

let agg_fold (a : Ast.agg) (vs : Value.t list) : Value.t =
  match a, vs with
  | _, [] -> raise (Eval_error "aggregate over empty group")
  | Ast.Min, v :: rest ->
    List.fold_left (fun m v -> if Value.compare v m < 0 then v else m) v rest
  | Ast.Max, v :: rest ->
    List.fold_left (fun m v -> if Value.compare v m > 0 then v else m) v rest
  | Ast.Count, vs -> Value.Int (List.length vs)
  | Ast.Sum, vs ->
    Value.Int (List.fold_left (fun acc v -> acc + Value.as_int v) 0 vs)

(* Evaluate an aggregate rule against the full database: group satisfying
   environments by the plain head arguments, fold the aggregate, emit one
   tuple per group. *)
let apply_agg_rule db (r : Ast.rule) : Store.Tuple.t list =
  let envs = body_envs db r.body in
  let groups =
    List.fold_left
      (fun groups env ->
        let key =
          List.map
            (function
              | Ast.Plain e -> Some (Env.eval env e)
              | Ast.Agg _ -> None)
            r.head.head_args
        in
        let aggvals =
          List.filter_map
            (function
              | Ast.Plain _ -> None
              | Ast.Agg (_, x) -> Some (Env.find x env))
            r.head.head_args
        in
        Kmap.update key
          (function
            | None -> Some [ aggvals ]
            | Some rows -> Some (aggvals :: rows))
          groups)
      Kmap.empty envs
  in
  Kmap.fold
    (fun key rows acc ->
      (* Recombine: plain positions from the key, aggregate positions
         folded over the collected column. *)
      let n_aggs = List.length (List.hd rows) in
      let columns =
        List.init n_aggs (fun i -> List.map (fun row -> List.nth row i) rows)
      in
      let rec build args key cols =
        match args, key with
        | [], [] -> []
        | Ast.Plain _ :: args', Some v :: key' -> v :: build args' key' cols
        | Ast.Agg (a, _) :: args', None :: key' -> (
          match cols with
          | col :: cols' -> agg_fold a col :: build args' key' cols'
          | [] -> raise (Eval_error "aggregate column mismatch"))
        | _ -> raise (Eval_error "aggregate head shape mismatch")
      in
      Array.of_list (build r.head.head_args key columns) :: acc)
    groups []

(* ------------------------------------------------------------------ *)
(* Fixpoint drivers. *)

let rules_of_stratum (p : Ast.program) stratum =
  List.filter (fun (r : Ast.rule) -> List.mem r.head.head_pred stratum) p.rules

let split_agg rules =
  List.partition (fun (r : Ast.rule) -> Ast.has_aggregate r.head) rules

(* Derived tuples of applying [rules] with optional per-position deltas
   restricted to [rec_preds]. *)
let apply_plain_rules db ?deltas ~rec_preds rules ~count =
  List.fold_left
    (fun acc (r : Ast.rule) ->
      let produce envs =
        List.fold_left
          (fun acc env ->
            incr count;
            Store.add r.head.head_pred (head_tuple env r.head) acc)
          acc envs
      in
      match deltas with
      | None -> produce (body_envs db r.body)
      | Some delta_db ->
        let positions = delta_positions rec_preds r.body in
        List.fold_left
          (fun acc i ->
            let pred =
              match List.nth r.body i with
              | Ast.Pos a -> a.Ast.pred
              | _ -> assert false
            in
            let d = Store.relation pred delta_db in
            if Store.Tset.is_empty d then acc
            else
              List.fold_left
                (fun acc env ->
                  incr count;
                  Store.add r.head.head_pred (head_tuple env r.head) acc)
                acc
                (body_envs db ~delta:(i, d) r.body))
          acc positions)
    Store.empty rules

(* Evaluate one stratum to fixpoint, semi-naively. *)
let eval_stratum_seminaive db stratum (p : Ast.program) ~max_rounds ~rounds
    ~count =
  let rules = rules_of_stratum p stratum in
  let agg_rules, plain_rules = split_agg rules in
  (* Aggregate rules see only lower strata: run them once. *)
  let db =
    List.fold_left
      (fun db r ->
        List.fold_left
          (fun db t ->
            incr count;
            Store.add r.Ast.head.Ast.head_pred t db)
          db (apply_agg_rule db r))
      db agg_rules
  in
  let rec_preds =
    List.sort_uniq String.compare
      (List.map (fun (r : Ast.rule) -> r.head.head_pred) plain_rules)
  in
  (* Initial round: full evaluation of the stratum's plain rules. *)
  let derived = apply_plain_rules db ~rec_preds plain_rules ~count in
  let delta = Store.diff derived db in
  let db = Store.union db delta in
  incr rounds;
  let rec loop db delta =
    if Store.is_empty delta then (db, true)
    else if !rounds >= max_rounds then (db, false)
    else begin
      incr rounds;
      let derived =
        apply_plain_rules db ~deltas:delta ~rec_preds plain_rules ~count
      in
      let delta' = Store.diff derived db in
      loop (Store.union db delta') delta'
    end
  in
  loop db delta

(* Evaluate one stratum to fixpoint, naively (for differential testing
   and the E7 bench). *)
let eval_stratum_naive db stratum (p : Ast.program) ~max_rounds ~rounds ~count
    =
  let rules = rules_of_stratum p stratum in
  let agg_rules, plain_rules = split_agg rules in
  let db =
    List.fold_left
      (fun db r ->
        List.fold_left
          (fun db t ->
            incr count;
            Store.add r.Ast.head.Ast.head_pred t db)
          db (apply_agg_rule db r))
      db agg_rules
  in
  let rec loop db =
    if !rounds >= max_rounds then (db, false)
    else begin
      incr rounds;
      let derived = apply_plain_rules db ~rec_preds:[] plain_rules ~count in
      let delta = Store.diff derived db in
      if Store.is_empty delta then (db, true)
      else loop (Store.union db delta)
    end
  in
  loop db

let eval_with stratum_eval ?(max_rounds = 10_000) (p : Ast.program)
    (info : Analysis.info) (db : Store.t) : outcome =
  let rounds = ref 0 and count = ref 0 in
  let db, converged =
    List.fold_left
      (fun (db, ok) stratum ->
        if not ok then (db, ok)
        else stratum_eval db stratum p ~max_rounds ~rounds ~count)
      (db, true) info.Analysis.strata
  in
  { db; rounds = !rounds; derivations = !count; converged }

let seminaive ?max_rounds p info db =
  eval_with eval_stratum_seminaive ?max_rounds p info db

let naive ?max_rounds p info db = eval_with eval_stratum_naive ?max_rounds p info db

(* Analyze and evaluate a self-contained program (facts included). *)
let run ?max_rounds ?(extra_facts = []) (p : Ast.program) :
    (outcome, Analysis.error) result =
  match Analysis.analyze p with
  | Error e -> Error e
  | Ok info ->
    let db = Store.of_facts (p.facts @ extra_facts) in
    Ok (seminaive ?max_rounds p info db)

let run_exn ?max_rounds ?extra_facts p =
  match run ?max_rounds ?extra_facts p with
  | Ok o -> o
  | Error e -> invalid_arg (Fmt.str "NDlog evaluation failed: %a" Analysis.pp_error e)

(* Convenience: parse source text and run it. *)
let run_source ?max_rounds src : (outcome, string) result =
  match Parser.parse_program src with
  | Error e -> Error e
  | Ok p -> (
    match run ?max_rounds p with
    | Ok o -> Ok o
    | Error e -> Error (Fmt.str "%a" Analysis.pp_error e))
