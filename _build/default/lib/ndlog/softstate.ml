(* Soft state (Section 4.2 of the paper).

   Two facilities:

   1. An expiry table used by the runtimes: it remembers when each
      soft-state tuple was (last) inserted and answers which tuples have
      expired at a given simulated time.  Re-inserting a tuple refreshes
      its lease, matching the classic soft-state refresh idiom.

   2. The hard-state rewrite: a mechanical translation that makes
      timeouts explicit so that a purely hard-state reasoner (the logic
      backend) can analyse soft-state programs.  Every soft predicate
      gains a trailing timestamp column; rules deriving soft predicates
      read the current time from a distinguished [clock(T)] relation,
      and every soft body atom gains a liveness guard
      [Ts + lifetime > T].  The paper calls this encoding "heavy-weight
      and cumbersome" — experiment E8 quantifies that. *)

module Smap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Expiry tracking. *)

module Expiry = struct
  module Key = struct
    type t = string * Store.Tuple.t

    let compare (p1, t1) (p2, t2) =
      let c = String.compare p1 p2 in
      if c <> 0 then c else Store.Tuple.compare t1 t2
  end

  module Kmap = Map.Make (Key)

  type t = {
    lifetimes : Ast.lifetime Smap.t;
    deadlines : float Kmap.t;
  }

  let create (decls : Ast.decl list) =
    let lifetimes =
      List.fold_left
        (fun m (d : Ast.decl) -> Smap.add d.decl_pred d.decl_lifetime m)
        Smap.empty decls
    in
    { lifetimes; deadlines = Kmap.empty }

  let lifetime_of t pred =
    match Smap.find_opt pred t.lifetimes with
    | Some l -> l
    | None -> Ast.Lifetime_forever

  let is_soft t pred =
    match lifetime_of t pred with
    | Ast.Lifetime _ -> true
    | Ast.Lifetime_forever -> false

  (* Record an insertion at [now]; refreshes the lease when the tuple is
     already present. *)
  let insert t ~now pred tuple =
    match lifetime_of t pred with
    | Ast.Lifetime_forever -> t
    | Ast.Lifetime l ->
      { t with deadlines = Kmap.add (pred, tuple) (now +. l) t.deadlines }

  (* Tuples dead at [now]; also returns the pruned table. *)
  let expired t ~now =
    let dead, alive =
      Kmap.partition (fun _ deadline -> deadline <= now) t.deadlines
    in
    (List.map fst (Kmap.bindings dead), { t with deadlines = alive })

  (* Earliest pending deadline, if any: the next time expiry can act. *)
  let next_deadline t =
    Kmap.fold
      (fun _ d acc ->
        match acc with Some m -> Some (min m d) | None -> Some d)
      t.deadlines None

  (* Drop expired tuples from a database. *)
  let sweep t ~now (db : Store.t) : Store.t * t =
    let dead, t' = expired t ~now in
    ( List.fold_left (fun db (pred, tuple) -> Store.remove pred tuple db) db dead,
      t' )

  (* [sweep], additionally reporting which tuples were actually removed
     from the database — the expiry half of dirty-predicate tracking
     (an expired lease for a tuple the database no longer holds changes
     nothing and must not dirty its predicate). *)
  let sweep_report t ~now (db : Store.t) :
      Store.t * (string * Store.Tuple.t) list * t =
    let dead, t' = expired t ~now in
    let db, removed_rev =
      List.fold_left
        (fun (db, removed) (pred, tuple) ->
          if Store.mem pred tuple db then
            (Store.remove pred tuple db, (pred, tuple) :: removed)
          else (db, removed))
        (db, []) dead
    in
    (db, List.rev removed_rev, t')

  (* Current leases in canonical key order: introspection for the
     incremental-refresh differential harness (lease tables must be
     bit-identical across refresh modes). *)
  let bindings t = Kmap.bindings t.deadlines
end

(* ------------------------------------------------------------------ *)
(* Hard-state rewrite. *)

let clock_pred = "clock"

type rewrite_report = {
  rewritten : Ast.program;
  soft_preds : string list;
  added_conditions : int;  (* liveness guards introduced *)
  added_columns : int;  (* timestamp columns introduced *)
}

let soft_preds_of (p : Ast.program) =
  List.filter_map
    (fun (d : Ast.decl) ->
      match d.decl_lifetime with
      | Ast.Lifetime l -> Some (d.decl_pred, l)
      | Ast.Lifetime_forever -> None)
    p.decls

(* Liveness guards compare an integer timestamp column against the
   integer [clock] relation, but [materialize] lifetimes are reals.
   For integers [Ts] and [T], [Ts + l > T] holds iff
   [Ts + ceil(l) > T], so rounding the lifetime {e up} reproduces
   {!Expiry}'s float deadline semantics exactly on the integer clock
   domain; truncating ([int_of_float]) would kill tuples with
   fractional lifetimes one clock tick early. *)
let guard_lifetime l = int_of_float (Float.ceil l)

(* Fresh timestamp variable names, one per rewritten atom. *)
let ts_var i = Printf.sprintf "Ts_%d" i

let now_var = "Tnow"

let to_hard_state (p : Ast.program) : rewrite_report =
  let soft = soft_preds_of p in
  let is_soft pred = List.mem_assoc pred soft in
  let added_conditions = ref 0 in
  let added_columns = ref 0 in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    ts_var !counter
  in
  let rewrite_rule (r : Ast.rule) : Ast.rule =
    counter := 0;
    let head_soft = is_soft r.head.Ast.head_pred in
    let body_rev, guards =
      List.fold_left
        (fun (body_rev, guards) lit ->
          match lit with
          | Ast.Pos a when is_soft a.Ast.pred ->
            let tv = fresh () in
            incr added_columns;
            let a' = { a with Ast.args = a.Ast.args @ [ Ast.Var tv ] } in
            let lifetime = List.assoc a.Ast.pred soft in
            incr added_conditions;
            let guard =
              Ast.Cond
                ( Ast.Gt,
                  Ast.Binop
                    ( Ast.Add,
                      Ast.Var tv,
                      Ast.Const (Value.Int (guard_lifetime lifetime)) ),
                  Ast.Var now_var )
            in
            (Ast.Pos a' :: body_rev, guard :: guards)
          | Ast.Neg a when is_soft a.Ast.pred ->
            (* A negated soft atom means "no live tuple": approximated by
               negating the timestamped relation joined with the clock;
               we keep the simple form with a fresh timestamp column that
               must fail for every stamp — encoded by negating the
               live-projection predicate generated below. *)
            let a' =
              { a with Ast.pred = a.Ast.pred ^ "_live" }
            in
            (Ast.Neg a' :: body_rev, guards)
          | l -> (l :: body_rev, guards))
        ([], []) r.body
    in
    let body = List.rev body_rev in
    let needs_clock = head_soft || guards <> [] in
    let clock_atom =
      Ast.Pos { Ast.pred = clock_pred; loc = None; args = [ Ast.Var now_var ] }
    in
    let body = if needs_clock then (clock_atom :: body) @ List.rev guards else body in
    let head =
      if head_soft then begin
        incr added_columns;
        {
          r.head with
          Ast.head_args = r.head.Ast.head_args @ [ Ast.Plain (Ast.Var now_var) ];
        }
      end
      else r.head
    in
    { r with head; body }
  in
  (* live-projection rules for negated soft atoms: p_live(args) holds iff
     some timestamped tuple is still alive at the clock. *)
  let live_rules =
    List.filter_map
      (fun (pred, lifetime) ->
        let arity =
          match Analysis.schema p with
          | Ok m -> (
            match Analysis.Smap.find_opt pred m with Some a -> a | None -> 0)
          | Error _ -> 0
        in
        if arity = 0 then None
        else
          let vars = List.init arity (fun i -> Ast.Var (Printf.sprintf "X%d" i)) in
          let ts = Ast.Var "Ts" in
          Some
            {
              Ast.rule_name = Some (pred ^ "_live_gen");
              head =
                {
                  Ast.head_pred = pred ^ "_live";
                  head_loc = None;
                  head_args = List.map (fun v -> Ast.Plain v) vars;
                };
              body =
                [
                  Ast.Pos
                    { Ast.pred = clock_pred; loc = None; args = [ Ast.Var now_var ] };
                  Ast.Pos { Ast.pred; loc = None; args = vars @ [ ts ] };
                  Ast.Cond
                    ( Ast.Gt,
                      Ast.Binop
                        ( Ast.Add,
                          ts,
                          Ast.Const (Value.Int (guard_lifetime lifetime)) ),
                      Ast.Var now_var );
                ];
            })
      soft
  in
  (* Only keep live rules for predicates actually negated somewhere. *)
  let negated_soft =
    List.concat_map
      (fun (r : Ast.rule) ->
        List.filter_map
          (function
            | Ast.Neg a when is_soft a.Ast.pred -> Some a.Ast.pred
            | _ -> None)
          r.body)
      p.rules
  in
  let live_rules =
    List.filter
      (fun (r : Ast.rule) ->
        List.exists
          (fun pred -> r.head.Ast.head_pred = pred ^ "_live")
          negated_soft)
      live_rules
  in
  let rules = List.map rewrite_rule p.rules @ live_rules in
  (* Soft facts gain an insertion timestamp of 0. *)
  let facts =
    List.map
      (fun (f : Ast.fact) ->
        if is_soft f.Ast.fact_pred then
          { f with Ast.fact_args = f.Ast.fact_args @ [ Value.Int 0 ] }
        else f)
      p.facts
  in
  (* All predicates become hard state in the rewritten program. *)
  let decls =
    List.map (fun (d : Ast.decl) -> { d with Ast.decl_lifetime = Ast.Lifetime_forever }) p.decls
  in
  {
    rewritten = { Ast.decls; facts; rules };
    soft_preds = List.map fst soft;
    added_conditions = !added_conditions;
    added_columns = !added_columns;
  }

(* Convenience: run a rewritten program at a given clock time. *)
let run_at_clock ?(max_rounds = 10_000) (rewritten : Ast.program) ~(now : int) :
    (Eval.outcome, Analysis.error) result =
  let clock_fact =
    { Ast.fact_pred = clock_pred; fact_loc = None; fact_args = [ Value.Int now ] }
  in
  Eval.run ~max_rounds ~extra_facts:[ clock_fact ] rewritten
