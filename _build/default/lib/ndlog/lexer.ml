(* Hand-written lexer for NDlog concrete syntax.

   Comments: [// ...] and [% ...] to end of line, and [/* ... */] blocks.
   Identifiers starting with an uppercase letter are variables; all others
   are predicate / function / constant names (disambiguated by the
   parser). *)

type token =
  | IDENT of string  (* lowercase-initial identifier *)
  | UIDENT of string  (* uppercase-initial identifier: a variable *)
  | INT of int
  | STRING of string
  | AT
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | PERIOD
  | COLONDASH
  | EQ  (* = *)
  | EQEQ  (* == *)
  | NE  (* != *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | BANG
  | EOF

exception Lex_error of string * int  (* message, line *)

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable peeked : (token * int) option;
}

let create src = { src; pos = 0; line = 1; peeked = None }

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let error t msg = raise (Lex_error (msg, t.line))

let rec skip_ws t =
  if t.pos >= String.length t.src then ()
  else
    match t.src.[t.pos] with
    | ' ' | '\t' | '\r' ->
      t.pos <- t.pos + 1;
      skip_ws t
    | '\n' ->
      t.pos <- t.pos + 1;
      t.line <- t.line + 1;
      skip_ws t
    | '%' ->
      skip_line t;
      skip_ws t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      skip_line t;
      skip_ws t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
      skip_block t;
      skip_ws t
    | _ -> ()

and skip_line t =
  while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
    t.pos <- t.pos + 1
  done

and skip_block t =
  t.pos <- t.pos + 2;
  let rec go () =
    if t.pos + 1 >= String.length t.src then error t "unterminated comment"
    else if t.src.[t.pos] = '*' && t.src.[t.pos + 1] = '/' then
      t.pos <- t.pos + 2
    else begin
      if t.src.[t.pos] = '\n' then t.line <- t.line + 1;
      t.pos <- t.pos + 1;
      go ()
    end
  in
  go ()

let lex_ident t =
  let start = t.pos in
  while t.pos < String.length t.src && is_ident_char t.src.[t.pos] do
    t.pos <- t.pos + 1
  done;
  String.sub t.src start (t.pos - start)

let lex_int t =
  let start = t.pos in
  while
    t.pos < String.length t.src && t.src.[t.pos] >= '0' && t.src.[t.pos] <= '9'
  do
    t.pos <- t.pos + 1
  done;
  int_of_string (String.sub t.src start (t.pos - start))

let lex_string t =
  t.pos <- t.pos + 1;
  let buf = Buffer.create 16 in
  let rec go () =
    if t.pos >= String.length t.src then error t "unterminated string"
    else
      match t.src.[t.pos] with
      | '"' -> t.pos <- t.pos + 1
      | '\\' when t.pos + 1 < String.length t.src ->
        Buffer.add_char buf t.src.[t.pos + 1];
        t.pos <- t.pos + 2;
        go ()
      | c ->
        if c = '\n' then t.line <- t.line + 1;
        Buffer.add_char buf c;
        t.pos <- t.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let raw_next t : token =
  skip_ws t;
  if t.pos >= String.length t.src then EOF
  else
    let c = t.src.[t.pos] in
    let two =
      if t.pos + 1 < String.length t.src then Some t.src.[t.pos + 1] else None
    in
    match c with
    | 'a' .. 'z' | '_' -> IDENT (lex_ident t)
    | 'A' .. 'Z' -> UIDENT (lex_ident t)
    | '0' .. '9' -> INT (lex_int t)
    | '"' -> STRING (lex_string t)
    | '@' ->
      t.pos <- t.pos + 1;
      AT
    | '(' ->
      t.pos <- t.pos + 1;
      LPAREN
    | ')' ->
      t.pos <- t.pos + 1;
      RPAREN
    | '[' ->
      t.pos <- t.pos + 1;
      LBRACKET
    | ']' ->
      t.pos <- t.pos + 1;
      RBRACKET
    | ',' ->
      t.pos <- t.pos + 1;
      COMMA
    | '.' ->
      t.pos <- t.pos + 1;
      PERIOD
    | ':' when two = Some '-' ->
      t.pos <- t.pos + 2;
      COLONDASH
    | '=' when two = Some '=' ->
      t.pos <- t.pos + 2;
      EQEQ
    | '=' ->
      t.pos <- t.pos + 1;
      EQ
    | '!' when two = Some '=' ->
      t.pos <- t.pos + 2;
      NE
    | '!' ->
      t.pos <- t.pos + 1;
      BANG
    | '<' when two = Some '=' ->
      t.pos <- t.pos + 2;
      LE
    | '<' ->
      t.pos <- t.pos + 1;
      LT
    | '>' when two = Some '=' ->
      t.pos <- t.pos + 2;
      GE
    | '>' ->
      t.pos <- t.pos + 1;
      GT
    | '+' ->
      t.pos <- t.pos + 1;
      PLUS
    | '-' ->
      t.pos <- t.pos + 1;
      MINUS
    | '*' ->
      t.pos <- t.pos + 1;
      STAR
    | '/' ->
      t.pos <- t.pos + 1;
      SLASH
    | _ -> error t (Printf.sprintf "unexpected character %C" c)

let next t : token * int =
  match t.peeked with
  | Some (tok, line) ->
    t.peeked <- None;
    (tok, line)
  | None ->
    let tok = raw_next t in
    (tok, t.line)

let peek t : token =
  match t.peeked with
  | Some (tok, _) -> tok
  | None ->
    let tok = raw_next t in
    t.peeked <- Some (tok, t.line);
    tok

let line t = match t.peeked with Some (_, l) -> l | None -> t.line

let string_of_token = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | UIDENT s -> Printf.sprintf "variable %S" s
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | AT -> "'@'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | PERIOD -> "'.'"
  | COLONDASH -> "':-'"
  | EQ -> "'='"
  | EQEQ -> "'=='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | BANG -> "'!'"
  | EOF -> "end of input"
