(** Runtime values carried in NDlog tuples.

    NDlog tuples are arrays of dynamically typed values.  Five sorts are
    supported: integers, strings, booleans, node addresses (the values of
    location-specifier attributes), and lists (used for path vectors). *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Addr of string  (** a node address, printed as [@name] *)
  | List of t list  (** path vectors and other sequences *)

val compare : t -> t -> int
(** Total order over values; sorts are ordered [Int < Str < Bool < Addr <
    List] and lists compare lexicographically. *)

val equal : t -> t -> bool

val pp : t Fmt.t
(** Pretty-printer: strings are quoted, addresses are prefixed with [@],
    lists use [\[v1; v2\]] syntax. *)

val to_string : t -> string

val int : int -> t
val str : string -> t
val bool : bool -> t
val addr : string -> t
val list : t list -> t

exception Type_error of string * t
(** [Type_error (expected_sort, got)] raised by the coercions below. *)

val as_int : t -> int
val as_str : t -> string
val as_bool : t -> bool

val as_addr : t -> string
(** Accepts both [Addr] and [Str] (addresses are frequently written as
    plain strings in program text). *)

val as_list : t -> t list

val sort_name : t -> string
(** Human-readable sort of a value, for error messages. *)

val hash : t -> int
(** Structure-stable hash, consistent with {!equal}. *)
