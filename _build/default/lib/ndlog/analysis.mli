(** Static analysis of NDlog programs: schema extraction, range
    restriction (safety), and stratification with respect to negation
    and aggregation. *)

module Sset : Set.S with type elt = string and type t = Set.Make(String).t
module Smap : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

(** Analysis failures. *)
type error =
  | Unsafe_rule of Ast.rule * string
      (** A rule uses unbound variables (in its head, a negated atom, a
          comparison, or a complex argument). *)
  | Arity_mismatch of string * int * int
      (** [pred, seen, expected]: inconsistent arities. *)
  | Unstratifiable of string list
      (** Negation/aggregation cycle; the list names offending
          predicates. *)

val pp_error : error Fmt.t

val schema : Ast.program -> (int Smap.t, error) result
(** Predicate arities collected from declarations, facts, and rules. *)

val check_rule_safety : Ast.rule -> (unit, error) result
(** Range restriction, scanning the body left to right: positive atoms
    bind their bare variable arguments; an assignment binds its variable
    if the right-hand side is bound; negated atoms, comparisons, complex
    arguments, and the head must use only bound variables. *)

val check_safety : Ast.program -> (unit, error) result

type dep = {
  dep_on : string;
  strict : bool;
      (** [strict] when the dependency passes through negation or into
          an aggregate head: the body predicate must live in a strictly
          lower stratum. *)
}

val dependencies : Ast.program -> dep list Smap.t
(** The head <- body dependency graph. *)

val stratify : Ast.program -> (string list list, error) result
(** Strata bottom-up; every strict dependency crosses a stratum
    boundary. *)

(** Everything the evaluators need to know about a program. *)
type info = {
  arities : int Smap.t;
  strata : string list list;
  base_preds : string list;  (** relations with no defining rule *)
  derived_preds : string list;  (** relations with at least one rule *)
  lifetimes : Ast.lifetime Smap.t;  (** from [materialize] declarations *)
}

val analyze : Ast.program -> (info, error) result
(** Schema + safety + stratification. *)

val analyze_exn : Ast.program -> info
(** @raise Invalid_argument on analysis failure. *)
