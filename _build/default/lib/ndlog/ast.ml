(* Abstract syntax of Network Datalog (NDlog).

   The concrete syntax follows the paper (Section 2.2):

     r2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
                          C=C1+C2, P=f_concatPath(S,P2),
                          f_inPath(P2,S)=false.

   A predicate argument prefixed with [@] is the location specifier: the
   tuple is stored at (and owned by) the node named by that attribute.
   Heads may carry one aggregate argument such as [min<C>]. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Var of string
  | Const of Value.t
  | Call of string * expr list  (* builtin function, e.g. f_concatPath *)
  | Binop of binop * expr * expr

type agg =
  | Min
  | Max
  | Count
  | Sum

type head_arg =
  | Plain of expr
  | Agg of agg * string  (* min<C>: aggregate over variable C *)

(* [loc] is the index (within [args]) of the location-specifier argument,
   if the predicate is location-annotated. *)
type atom = {
  pred : string;
  loc : int option;
  args : expr list;
}

type lit =
  | Pos of atom
  | Neg of atom
  | Assign of string * expr  (* X = expr, with X unbound: binds X *)
  | Cond of cmp * expr * expr  (* boolean test over bound expressions *)

type head = {
  head_pred : string;
  head_loc : int option;
  head_args : head_arg list;
}

type rule = {
  rule_name : string option;
  head : head;
  body : lit list;
}

(* [materialize(pred, lifetime)] declares storage for a predicate.
   [Lifetime_forever] is hard state; [Lifetime n] is soft state expiring
   [n] simulated seconds after insertion. *)
type lifetime =
  | Lifetime_forever
  | Lifetime of float

type decl = {
  decl_pred : string;
  decl_lifetime : lifetime;
}

(* A ground fact, e.g. [link(@a,b,1).] *)
type fact = {
  fact_pred : string;
  fact_loc : int option;
  fact_args : Value.t list;
}

type program = {
  decls : decl list;
  facts : fact list;
  rules : rule list;
}

let empty_program = { decls = []; facts = []; rules = [] }

(* ------------------------------------------------------------------ *)
(* Constructors used by programmatic clients (tests, code generators). *)

let var x = Var x
let const v = Const v
let cint n = Const (Value.Int n)
let cstr s = Const (Value.Str s)
let cbool b = Const (Value.Bool b)
let caddr a = Const (Value.Addr a)
let call f args = Call (f, args)
let ( +: ) a b = Binop (Add, a, b)

let atom ?loc pred args = { pred; loc; args }

let head ?loc pred args = { head_pred = pred; head_loc = loc; head_args = args }

let rule ?name head body = { rule_name = name; head; body }

let fact ?loc pred args = { fact_pred = pred; fact_loc = loc; fact_args = args }

let decl ?(lifetime = Lifetime_forever) pred =
  { decl_pred = pred; decl_lifetime = lifetime }

(* ------------------------------------------------------------------ *)
(* Variable collection. *)

module Sset = Set.Make (String)

let rec vars_of_expr acc = function
  | Var x -> Sset.add x acc
  | Const _ -> acc
  | Call (_, args) -> List.fold_left vars_of_expr acc args
  | Binop (_, a, b) -> vars_of_expr (vars_of_expr acc a) b

let vars_of_atom acc a = List.fold_left vars_of_expr acc a.args

let vars_of_lit acc = function
  | Pos a | Neg a -> vars_of_atom acc a
  | Assign (x, e) -> vars_of_expr (Sset.add x acc) e
  | Cond (_, a, b) -> vars_of_expr (vars_of_expr acc a) b

let vars_of_head_arg acc = function
  | Plain e -> vars_of_expr acc e
  | Agg (_, x) -> Sset.add x acc

let vars_of_head acc h = List.fold_left vars_of_head_arg acc h.head_args

let rule_vars r = List.fold_left vars_of_lit (vars_of_head Sset.empty r.head) r.body

(* ------------------------------------------------------------------ *)
(* Predicate occurrence helpers. *)

let body_atoms body =
  List.filter_map (function Pos a | Neg a -> Some a | Assign _ | Cond _ -> None) body

let body_preds body = List.map (fun a -> a.pred) (body_atoms body)

let head_arity h = List.length h.head_args

let has_aggregate h =
  List.exists (function Agg _ -> true | Plain _ -> false) h.head_args

(* ------------------------------------------------------------------ *)
(* Pretty-printing back to concrete syntax. *)

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let string_of_cmp = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let string_of_agg = function
  | Min -> "min"
  | Max -> "max"
  | Count -> "count"
  | Sum -> "sum"

let rec pp_expr ppf = function
  | Var x -> Fmt.string ppf x
  | Const v -> Value.pp ppf v
  | Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ",") pp_expr) args
  | Binop (op, a, b) ->
    Fmt.pf ppf "(%a%s%a)" pp_expr a (string_of_binop op) pp_expr b

let pp_arg_at loc i ppf e =
  if loc = Some i then Fmt.pf ppf "@@%a" pp_expr e else pp_expr ppf e

let pp_atom ppf a =
  Fmt.pf ppf "%s(" a.pred;
  List.iteri
    (fun i e ->
      if i > 0 then Fmt.string ppf ",";
      pp_arg_at a.loc i ppf e)
    a.args;
  Fmt.string ppf ")"

let pp_head_arg ppf = function
  | Plain e -> pp_expr ppf e
  | Agg (a, x) -> Fmt.pf ppf "%s<%s>" (string_of_agg a) x

let pp_head ppf h =
  Fmt.pf ppf "%s(" h.head_pred;
  List.iteri
    (fun i arg ->
      if i > 0 then Fmt.string ppf ",";
      (match arg, h.head_loc with
      | Plain _, Some j when i = j -> Fmt.string ppf "@"
      | _ -> ());
      pp_head_arg ppf arg)
    h.head_args;
  Fmt.string ppf ")"

let pp_lit ppf = function
  | Pos a -> pp_atom ppf a
  | Neg a -> Fmt.pf ppf "!%a" pp_atom a
  | Assign (x, e) -> Fmt.pf ppf "%s=%a" x pp_expr e
  | Cond (c, a, b) -> Fmt.pf ppf "%a%s%a" pp_expr a (string_of_cmp c) pp_expr b

let pp_rule ppf r =
  (match r.rule_name with
  | Some n -> Fmt.pf ppf "%s " n
  | None -> ());
  Fmt.pf ppf "%a :- %a." pp_head r.head Fmt.(list ~sep:(any ", ") pp_lit) r.body

let pp_fact ppf f =
  Fmt.pf ppf "%s(" f.fact_pred;
  List.iteri
    (fun i v ->
      if i > 0 then Fmt.string ppf ",";
      (match f.fact_loc with
      | Some j when i = j -> Fmt.pf ppf "@@%s" (Value.as_addr v)
      | _ -> Value.pp ppf v))
    f.fact_args;
  Fmt.string ppf ")."

let pp_lifetime ppf = function
  | Lifetime_forever -> Fmt.string ppf "infinity"
  | Lifetime s -> Fmt.pf ppf "%g" s

let pp_decl ppf d =
  Fmt.pf ppf "materialize(%s, %a)." d.decl_pred pp_lifetime d.decl_lifetime

let pp_program ppf p =
  List.iter (fun d -> Fmt.pf ppf "%a@." pp_decl d) p.decls;
  List.iter (fun f -> Fmt.pf ppf "%a@." pp_fact f) p.facts;
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_rule r) p.rules

let program_to_string p = Fmt.str "%a" pp_program p
