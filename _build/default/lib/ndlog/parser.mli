(** Recursive-descent parser for NDlog concrete syntax.

    Grammar sketch (see the paper's Section 2.2 for examples):

    {v
program  ::= { decl | fact | rule }
decl     ::= "materialize" "(" pred "," lifetime ")" "."
rule     ::= [label] head ":-" lit { "," lit } "."
fact     ::= pred "(" ground-arg { "," ground-arg } ")" "."
head-arg ::= ["@"] expr | agg "<" VAR ">"
lit      ::= atom | "!" atom | VAR "=" expr | expr cmp expr
    v}

    Identifiers starting with an uppercase letter are variables.
    Lowercase identifiers applied to arguments are builtin calls when
    registered in {!Builtins} and atoms otherwise; unapplied lowercase
    identifiers are address constants ([link(@a,b,1)] reads [a], [b] as
    addresses); [true]/[false] are booleans.  Comments: [// ...],
    [% ...], and [/* ... */]. *)

exception Parse_error of string * int
(** Message and line number. *)

val parse_program_exn : string -> Ast.program
(** @raise Parse_error on syntax errors.
    @raise Lexer.Lex_error on lexical errors. *)

val parse_program : string -> (Ast.program, string) result
(** Errors are rendered with their line number. *)
