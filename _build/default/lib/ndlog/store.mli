(** Ground-tuple storage: a persistent database mapping predicate names
    to sets of tuples.  Stores are canonical values — two databases with
    the same contents are structurally equal — which lets the model
    checker use them directly as states. *)

(** Tuples: value arrays compared lexicographically (length first). *)
module Tuple : sig
  type t = Value.t array

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : t Fmt.t
end

(** Sets of tuples. *)
module Tset : Set.S with type elt = Tuple.t

type t
(** A database. *)

val empty : t

val relation : string -> t -> Tset.t
(** The tuple set of a predicate (empty when absent). *)

val tuples : string -> t -> Tuple.t list
(** The tuples of a predicate, in canonical order. *)

val mem : string -> Tuple.t -> t -> bool
val add : string -> Tuple.t -> t -> t
val remove : string -> Tuple.t -> t -> t
val add_list : string -> Tuple.t list -> t -> t

val set_relation : string -> Tset.t -> t -> t
(** Replace a predicate's relation wholesale (used by view refresh). *)

val preds : t -> string list
(** Predicates with at least one tuple, sorted. *)

val cardinal : string -> t -> int
val total_tuples : t -> int

val union : t -> t -> t
(** Per-predicate set union. *)

val diff : t -> t -> t
(** [diff b a]: the tuples of [b] not in [a] (the delta). *)

val is_empty : t -> bool

val equal : t -> t -> bool
(** Content equality (empty relations are irrelevant). *)

val compare : t -> t -> int
val hash : t -> int

val of_facts : Ast.fact list -> t

val restrict : string list -> t -> t
(** Keep only the given predicates. *)

val to_list : t -> (string * Tuple.t) list
(** All tuples as [(pred, tuple)] pairs, deterministically ordered. *)

val fold_rel : string -> (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter_rel : string -> (Tuple.t -> unit) -> t -> unit
val pp : t Fmt.t
val to_string : t -> string
