(* Static analysis of NDlog programs: schema extraction, range
   restriction (safety), and stratification with respect to negation and
   aggregation.

   Safety here is the usual Datalog discipline extended with assignments:
   scanning the body left to right, a positive atom binds its bare
   variable arguments; an assignment [X = e] binds [X] provided every
   variable of [e] is already bound; negated atoms, comparisons, complex
   arguments, and the head must use only bound variables. *)

module Sset = Set.Make (String)
module Smap = Map.Make (String)

type error =
  | Unsafe_rule of Ast.rule * string
  | Arity_mismatch of string * int * int  (* pred, seen, expected *)
  | Unstratifiable of string list  (* a negation/aggregation cycle *)

let pp_error ppf = function
  | Unsafe_rule (r, msg) -> Fmt.pf ppf "unsafe rule %a: %s" Ast.pp_rule r msg
  | Arity_mismatch (p, seen, expected) ->
    Fmt.pf ppf "predicate %s used with arity %d but declared/used with %d" p
      seen expected
  | Unstratifiable cycle ->
    Fmt.pf ppf "program is not stratifiable: negation/aggregation cycle %a"
      Fmt.(list ~sep:(any " -> ") string)
      cycle

(* ------------------------------------------------------------------ *)
(* Schema: predicate -> arity, collected from declarations, facts, and
   rule occurrences; inconsistencies are errors. *)

let schema (p : Ast.program) : (int Smap.t, error) result =
  let add pred arity m =
    match Smap.find_opt pred m with
    | None -> Ok (Smap.add pred arity m)
    | Some a when a = arity -> Ok m
    | Some a -> Error (Arity_mismatch (pred, arity, a))
  in
  let ( >>= ) r f = Result.bind r f in
  let from_facts m =
    List.fold_left
      (fun acc (f : Ast.fact) ->
        acc >>= add f.fact_pred (List.length f.fact_args))
      (Ok m) p.facts
  in
  let from_rules m =
    List.fold_left
      (fun acc (r : Ast.rule) ->
        let acc = acc >>= add r.head.head_pred (Ast.head_arity r.head) in
        List.fold_left
          (fun acc (a : Ast.atom) -> acc >>= add a.pred (List.length a.args))
          acc
          (Ast.body_atoms r.body))
      (Ok m) p.rules
  in
  from_facts Smap.empty >>= fun m -> from_rules m

(* ------------------------------------------------------------------ *)
(* Safety. *)

let check_rule_safety (r : Ast.rule) : (unit, error) result =
  let module S = Sset in
  let exception Unsafe of string in
  let bound_expr bound e = S.subset (Ast.vars_of_expr S.empty e) bound in
  let bind_atom bound (a : Ast.atom) =
    (* Bare variables bind; complex arguments must already be bound. *)
    List.fold_left
      (fun bound (arg : Ast.expr) ->
        match arg with
        | Ast.Var x -> S.add x bound
        | e ->
          if bound_expr bound e then bound
          else
            raise
              (Unsafe
                 (Fmt.str "argument %a uses unbound variables" Ast.pp_expr e)))
      bound a.args
  in
  try
    let bound =
      List.fold_left
        (fun bound lit ->
          match lit with
          | Ast.Pos a -> bind_atom bound a
          | Ast.Neg a ->
            if
              S.subset (Ast.vars_of_lit S.empty lit) bound
            then bound
            else
              raise
                (Unsafe
                   (Fmt.str "negated atom %a uses unbound variables" Ast.pp_atom
                      a))
          | Ast.Assign (x, e) ->
            if bound_expr bound e then S.add x bound
            else
              raise
                (Unsafe
                   (Fmt.str "assignment to %s uses unbound variables" x))
          | Ast.Cond (_, a, b) ->
            if bound_expr bound a && bound_expr bound b then bound
            else raise (Unsafe "comparison uses unbound variables"))
        S.empty r.body
    in
    let head_vars = Ast.vars_of_head S.empty r.head in
    if S.subset head_vars bound then Ok ()
    else
      let missing = S.elements (S.diff head_vars bound) in
      Error
        (Unsafe_rule
           (r, Fmt.str "head variables not bound by body: %a"
                 Fmt.(list ~sep:(any ", ") string)
                 missing))
  with Unsafe msg -> Error (Unsafe_rule (r, msg))

let check_safety (p : Ast.program) : (unit, error) result =
  List.fold_left
    (fun acc r -> Result.bind acc (fun () -> check_rule_safety r))
    (Ok ()) p.rules

(* ------------------------------------------------------------------ *)
(* Dependency graph and stratification.

   Edge head <- body_pred, labelled "strict" when the body predicate
   appears under negation or the head carries an aggregate (aggregation
   must see the complete lower relation before folding). *)

type dep = { dep_on : string; strict : bool }

let dependencies (p : Ast.program) : dep list Smap.t =
  List.fold_left
    (fun m (r : Ast.rule) ->
      let aggregated = Ast.has_aggregate r.head in
      let deps =
        List.filter_map
          (function
            | Ast.Pos a -> Some { dep_on = a.pred; strict = aggregated }
            | Ast.Neg a -> Some { dep_on = a.pred; strict = true }
            | Ast.Assign _ | Ast.Cond _ -> None)
          r.body
      in
      Smap.update r.head.head_pred
        (function None -> Some deps | Some old -> Some (deps @ old))
        m)
    Smap.empty p.rules

(* Stratification by iterated relaxation: stratum(p) >= stratum(q) for
   plain deps, stratum(p) >= stratum(q)+1 for strict deps.  Divergence
   beyond the predicate count signals a strict cycle. *)
let stratify (p : Ast.program) : (string list list, error) result =
  let deps = dependencies p in
  let all_preds =
    let s = ref Sset.empty in
    Smap.iter
      (fun h ds ->
        s := Sset.add h !s;
        List.iter (fun d -> s := Sset.add d.dep_on !s) ds)
      deps;
    List.iter (fun (f : Ast.fact) -> s := Sset.add f.fact_pred !s) p.facts;
    List.iter
      (fun (d : Ast.decl) -> s := Sset.add d.decl_pred !s)
      p.decls;
    Sset.elements !s
  in
  let n = List.length all_preds in
  let stratum = Hashtbl.create 16 in
  List.iter (fun pred -> Hashtbl.replace stratum pred 0) all_preds;
  let changed = ref true in
  let rounds = ref 0 in
  let get pred = try Hashtbl.find stratum pred with Not_found -> 0 in
  while !changed && !rounds <= n + 1 do
    changed := false;
    incr rounds;
    Smap.iter
      (fun h ds ->
        List.iter
          (fun d ->
            let need = get d.dep_on + if d.strict then 1 else 0 in
            if get h < need then begin
              Hashtbl.replace stratum h need;
              changed := true
            end)
          ds)
      deps
  done;
  if !changed then
    (* Find one offending strict cycle member set for the error report. *)
    let over =
      List.filter (fun pred -> get pred > n) all_preds
    in
    Error (Unstratifiable over)
  else
    let max_stratum = List.fold_left (fun m pr -> max m (get pr)) 0 all_preds in
    let strata =
      List.init (max_stratum + 1) (fun i ->
          List.filter (fun pred -> get pred = i) all_preds)
    in
    Ok (List.filter (fun l -> l <> []) strata)

(* ------------------------------------------------------------------ *)
(* Full analysis: schema, safety, strata, plus derived metadata used by
   the evaluators. *)

type info = {
  arities : int Smap.t;
  strata : string list list;
  (* Predicates with no defining rule (pure input relations). *)
  base_preds : string list;
  (* Predicates defined by at least one rule. *)
  derived_preds : string list;
  lifetimes : Ast.lifetime Smap.t;
}

let analyze (p : Ast.program) : (info, error) result =
  let ( >>= ) r f = Result.bind r f in
  schema p >>= fun arities ->
  check_safety p >>= fun () ->
  stratify p >>= fun strata ->
  let derived =
    List.sort_uniq String.compare
      (List.map (fun (r : Ast.rule) -> r.head.head_pred) p.rules)
  in
  let base =
    Smap.bindings arities
    |> List.map fst
    |> List.filter (fun pred -> not (List.mem pred derived))
  in
  let lifetimes =
    List.fold_left
      (fun m (d : Ast.decl) -> Smap.add d.decl_pred d.decl_lifetime m)
      Smap.empty p.decls
  in
  Ok
    {
      arities;
      strata;
      base_preds = base;
      derived_preds = derived;
      lifetimes;
    }

let analyze_exn p =
  match analyze p with
  | Ok info -> info
  | Error e -> invalid_arg (Fmt.str "NDlog analysis failed: %a" pp_error e)
