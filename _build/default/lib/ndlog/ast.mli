(** Abstract syntax of Network Datalog (NDlog).

    The concrete syntax follows the paper's Section 2.2:

    {v
r2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
                     C=C1+C2, P=f_concatPath(S,P2),
                     f_inPath(P2,S)=false.
    v}

    An argument prefixed with [@] is the {e location specifier}: the
    tuple is stored at the node named by that attribute.  Heads may
    carry aggregate arguments such as [min<C>]. *)

(** Binary arithmetic operators usable in expressions. *)
type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod

(** Comparison operators usable in body conditions. *)
type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

(** Expressions: variables, constants, builtin function calls
    ({!Builtins}), and arithmetic. *)
type expr =
  | Var of string
  | Const of Value.t
  | Call of string * expr list
  | Binop of binop * expr * expr

(** Aggregate functions allowed in rule heads. *)
type agg =
  | Min
  | Max
  | Count
  | Sum

(** A head argument: a plain expression, or an aggregate over a body
    variable ([min<C>]). *)
type head_arg =
  | Plain of expr
  | Agg of agg * string

(** A predicate applied to arguments.  [loc] is the index (within
    [args]) of the location-specifier argument, if any. *)
type atom = {
  pred : string;
  loc : int option;
  args : expr list;
}

(** Body literals: positive and negated atoms, assignments ([X = e],
    binding [X]), and comparisons. *)
type lit =
  | Pos of atom
  | Neg of atom
  | Assign of string * expr
  | Cond of cmp * expr * expr

(** A rule head: predicate, optional location index, arguments. *)
type head = {
  head_pred : string;
  head_loc : int option;
  head_args : head_arg list;
}

(** A rule, with an optional label ([r1], [r2], ...). *)
type rule = {
  rule_name : string option;
  head : head;
  body : lit list;
}

(** Tuple lifetime, from [materialize] declarations: hard state
    ([Lifetime_forever]) or soft state expiring after the given number
    of simulated seconds. *)
type lifetime =
  | Lifetime_forever
  | Lifetime of float

(** A [materialize(pred, lifetime)] declaration. *)
type decl = {
  decl_pred : string;
  decl_lifetime : lifetime;
}

(** A ground fact, e.g. [link(@a,b,1).]. *)
type fact = {
  fact_pred : string;
  fact_loc : int option;
  fact_args : Value.t list;
}

(** A complete program: declarations, facts, rules. *)
type program = {
  decls : decl list;
  facts : fact list;
  rules : rule list;
}

val empty_program : program

(** {1 Constructors}

    Convenience builders used by programmatic clients (tests, the
    component-model code generator). *)

val var : string -> expr
val const : Value.t -> expr
val cint : int -> expr
val cstr : string -> expr
val cbool : bool -> expr
val caddr : string -> expr
val call : string -> expr list -> expr

val ( +: ) : expr -> expr -> expr
(** Addition. *)

val atom : ?loc:int -> string -> expr list -> atom
val head : ?loc:int -> string -> head_arg list -> head
val rule : ?name:string -> head -> lit list -> rule
val fact : ?loc:int -> string -> Value.t list -> fact
val decl : ?lifetime:lifetime -> string -> decl

(** {1 Variable and predicate queries} *)

module Sset :
  Set.S with type elt = string and type t = Set.Make(String).t

val vars_of_expr : Sset.t -> expr -> Sset.t
val vars_of_atom : Sset.t -> atom -> Sset.t
val vars_of_lit : Sset.t -> lit -> Sset.t
val vars_of_head_arg : Sset.t -> head_arg -> Sset.t
val vars_of_head : Sset.t -> head -> Sset.t

val rule_vars : rule -> Sset.t
(** All variables occurring in a rule (head and body). *)

val body_atoms : lit list -> atom list
(** The positive and negated atoms of a body, in order. *)

val body_preds : lit list -> string list
(** Predicates of {!body_atoms} (with duplicates). *)

val head_arity : head -> int

val has_aggregate : head -> bool
(** Does the head carry an aggregate argument? *)

(** {1 Pretty-printing}

    Output is valid concrete syntax; {!Parser.parse_program} of
    {!program_to_string} round-trips. *)

val string_of_binop : binop -> string
val string_of_cmp : cmp -> string
val string_of_agg : agg -> string
val pp_expr : expr Fmt.t
val pp_atom : atom Fmt.t
val pp_head_arg : head_arg Fmt.t
val pp_head : head Fmt.t
val pp_lit : lit Fmt.t
val pp_rule : rule Fmt.t
val pp_fact : fact Fmt.t
val pp_lifetime : lifetime Fmt.t
val pp_decl : decl Fmt.t
val pp_program : program Fmt.t
val program_to_string : program -> string
