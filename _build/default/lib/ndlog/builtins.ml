(* Builtin functions available in NDlog rule bodies.

   The paper's path-vector program uses three of them:
     f_init(S,D)        -- a fresh two-element path vector [S; D]
     f_concatPath(S,P)  -- prepend S to path vector P
     f_inPath(P,S)      -- membership test of S in P
   The remainder are standard P2 list/arithmetic helpers that the example
   programs and the component-generated code rely on. *)

exception Unknown_function of string
exception Arity_error of string * int  (* function, got *)

let err_arity name args = raise (Arity_error (name, List.length args))

let f_init name = function
  | [ s; d ] -> Value.List [ s; d ]
  | args -> err_arity name args

let f_concat_path name = function
  | [ s; p ] -> Value.List (s :: Value.as_list p)
  | args -> err_arity name args

let f_in_path name = function
  | [ p; s ] -> Value.Bool (List.exists (Value.equal s) (Value.as_list p))
  | args -> err_arity name args

let f_size name = function
  | [ p ] -> Value.Int (List.length (Value.as_list p))
  | args -> err_arity name args

let f_first name = function
  | [ p ] -> (
    match Value.as_list p with
    | v :: _ -> v
    | [] -> raise (Value.Type_error ("non-empty list", p)))
  | args -> err_arity name args

let f_last name = function
  | [ p ] -> (
    match List.rev (Value.as_list p) with
    | v :: _ -> v
    | [] -> raise (Value.Type_error ("non-empty list", p)))
  | args -> err_arity name args

let f_append name = function
  | [ p; q ] -> Value.List (Value.as_list p @ Value.as_list q)
  | args -> err_arity name args

let f_reverse name = function
  | [ p ] -> Value.List (List.rev (Value.as_list p))
  | args -> err_arity name args

let f_empty name = function
  | [] -> Value.List []
  | args -> err_arity name args

let f_cons name = function
  | [ v; p ] -> Value.List (v :: Value.as_list p)
  | args -> err_arity name args

let f_min2 name = function
  | [ a; b ] -> if Value.compare a b <= 0 then a else b
  | args -> err_arity name args

let f_max2 name = function
  | [ a; b ] -> if Value.compare a b >= 0 then a else b
  | args -> err_arity name args

let f_abs name = function
  | [ a ] -> Value.Int (abs (Value.as_int a))
  | args -> err_arity name args

let f_to_str name = function
  | [ v ] -> Value.Str (Value.to_string v)
  | args -> err_arity name args

let f_not name = function
  | [ v ] -> Value.Bool (not (Value.as_bool v))
  | args -> err_arity name args

let table : (string * (string -> Value.t list -> Value.t)) list =
  [
    ("f_init", f_init);
    ("f_initPath", f_init);
    ("f_concatPath", f_concat_path);
    ("f_inPath", f_in_path);
    ("f_size", f_size);
    ("f_length", f_size);
    ("f_first", f_first);
    ("f_head", f_first);
    ("f_last", f_last);
    ("f_append", f_append);
    ("f_reverse", f_reverse);
    ("f_empty", f_empty);
    ("f_cons", f_cons);
    ("f_min", f_min2);
    ("f_max", f_max2);
    ("f_abs", f_abs);
    ("f_toStr", f_to_str);
    ("f_not", f_not);
  ]

let is_builtin name = List.mem_assoc name table

let apply name args =
  match List.assoc_opt name table with
  | Some f -> f name args
  | None -> raise (Unknown_function name)

let names () = List.map fst table
