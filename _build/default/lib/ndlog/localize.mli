(** Localization rewrite: make every rule body single-site.

    Distributed execution requires each rule body to read only tuples
    stored at one node.  The classic NDlog rewrite turns a
    link-restricted rule such as the paper's [r2] — whose body joins
    tuples at [S] ([link]) with tuples at [Z] ([path]) — into a pair of
    rules by introducing an inverted copy of the link relation stored at
    the other endpoint:

    {v
link_l1(S,@Z,C) :- link(@S,Z,C).
path(@S,D,P,C)  :- link_l1(S,@Z,C1), path(@Z,D,P2,C2), ...
    v}

    A head located away from its body is a network send, which the
    distributed runtime implements as a message. *)

type error =
  | Not_link_restricted of Ast.rule * string
      (** The body spans locations not connected by a single atom. *)
  | Missing_location of Ast.rule * string

val pp_error : error Fmt.t

val loc_var_of_atom : Ast.atom -> string option
(** The bare variable at the atom's location index, if any. *)

val loc_var_of_head : Ast.head -> string option

val relocated_name : string -> int -> string
(** Name of the copy of [pred] stored at argument index [i]
    ([pred_l<i>]). *)

type result_t = {
  program : Ast.program;  (** the rewritten program *)
  relocations : (string * int * int) list;
      (** (predicate, original location index, new location index)
          triples for which inverted-copy rules were generated *)
}

val rewrite_program : Ast.program -> (result_t, error) result
(** Rewrite every multi-site rule; already-local rules are untouched.
    The rewrite preserves program semantics on the original predicates
    (differentially tested against the centralized evaluator). *)

val check_localized : Ast.program -> (unit, error) result
(** Succeeds iff every rule body reads a single location. *)
