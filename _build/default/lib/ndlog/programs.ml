(* Canonical NDlog programs from the paper and its companion reports,
   plus topology generators used by tests, examples, and benchmarks. *)

(* The path-vector protocol of Section 2.2, verbatim up to whitespace. *)
let path_vector_src =
  {|
materialize(link, infinity).
materialize(path, infinity).
materialize(bestPathCost, infinity).
materialize(bestPath, infinity).

r1 path(@S,D,P,C) :- link(@S,D,C), P=f_init(S,D).
r2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
                     C=C1+C2, P=f_concatPath(S,P2),
                     f_inPath(P2,S)=false.
r3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
r4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
|}

(* Distance-vector without a path vector: no cycle check, so a link
   failure on a cyclic topology exhibits count-to-infinity (Section 3.1,
   "the presence of count-to-infinity loops in the distance-vector
   protocol"). *)
let distance_vector_src =
  {|
materialize(link, infinity).
materialize(cost, infinity).
materialize(bestCost, infinity).

d1 cost(@S,D,C) :- link(@S,D,C).
d2 cost(@S,D,C) :- link(@S,Z,C1), cost(@Z,D,C2), C=C1+C2.
d3 bestCost(@S,D,min<C>) :- cost(@S,D,C).
|}

(* Distance-vector with a hop-count bound: converges, used as the sound
   counterpart in tests. *)
let bounded_distance_vector_src ~max_hops =
  Printf.sprintf
    {|
materialize(link, infinity).
materialize(cost, infinity).
materialize(bestCost, infinity).

d1 cost(@S,D,C,H) :- link(@S,D,C), H=1.
d2 cost(@S,D,C,H) :- link(@S,Z,C1), cost(@Z,D,C2,H2),
                     C=C1+C2, H=H2+1, H2<%d.
d3 bestCost(@S,D,min<C>) :- cost(@S,D,C,H).
|}
    max_hops

(* Link-state routing: every node floods link-state advertisements
   (LSAs) to its neighbours until all nodes share the full link map
   (monotone, so plain NDlog handles it); each node then computes
   shortest paths locally over its copy of the map.  The local
   computation is hop-bounded (pass the node count) to terminate on
   cyclic maps — the standard trick a real LS implementation's Dijkstra
   sidesteps.

   The program is already localized: flooding (ls2) reads only
   node-local tuples and sends the derived LSA to the neighbour. *)
let link_state_src ~max_hops =
  Printf.sprintf
    {|
materialize(link, infinity).
materialize(lsa, infinity).
materialize(lpath, infinity).
materialize(lsCost, infinity).

ls1 lsa(@S,S,D,C) :- link(@S,D,C).
ls2 lsa(@M,S,D,C) :- link(@N,M,C2), lsa(@N,S,D,C).
ls3 lpath(@N,D,C,H) :- lsa(@N,N,D,C), H=1.
ls4 lpath(@N,D,C,H) :- lpath(@N,Z,C1,H1), lsa(@N,Z,D,C2),
                       C=C1+C2, H=H1+1, H1<%d.
ls5 lsCost(@N,D,min<C>) :- lpath(@N,D,C,H).
|}
    max_hops

(* Simple transitive reachability. *)
let reachability_src =
  {|
materialize(link, infinity).
materialize(reachable, infinity).

rc1 reachable(@S,D) :- link(@S,D,C).
rc2 reachable(@S,D) :- link(@S,Z,C), reachable(@Z,D).
|}

(* A soft-state heartbeat: pings refresh neighbor liveness, and the
   aliveNeighbor table expires when refreshes stop. *)
let heartbeat_src ~lifetime =
  Printf.sprintf
    {|
materialize(link, infinity).
materialize(ping, %d).
materialize(aliveNeighbor, %d).

h1 ping(@D,S) :- link(@S,D,C).
h2 aliveNeighbor(@D,S) :- ping(@D,S).
|}
    lifetime lifetime

let parse_exn src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error e -> invalid_arg ("Programs.parse_exn: " ^ e)

let path_vector () = parse_exn path_vector_src
let distance_vector () = parse_exn distance_vector_src

let bounded_distance_vector ~max_hops =
  parse_exn (bounded_distance_vector_src ~max_hops)

let reachability () = parse_exn reachability_src
let link_state ~max_hops = parse_exn (link_state_src ~max_hops)
let heartbeat ~lifetime = parse_exn (heartbeat_src ~lifetime)

(* ------------------------------------------------------------------ *)
(* Topology generators: lists of link facts.  Node names are n0..n(k-1).
   All generated topologies are symmetric (links in both directions). *)

let node i = Printf.sprintf "n%d" i

let link_fact s d c =
  {
    Ast.fact_pred = "link";
    fact_loc = Some 0;
    fact_args = [ Value.Addr s; Value.Addr d; Value.Int c ];
  }

let both s d c = [ link_fact s d c; link_fact d s c ]

(* A chain n0 - n1 - ... - n(k-1). *)
let line_links ?(cost = fun _ -> 1) k =
  List.concat (List.init (k - 1) (fun i -> both (node i) (node (i + 1)) (cost i)))

(* A ring of k nodes. *)
let ring_links ?(cost = fun _ -> 1) k =
  List.concat
    (List.init k (fun i -> both (node i) (node ((i + 1) mod k)) (cost i)))

(* A star centered at n0. *)
let star_links ?(cost = fun _ -> 1) k =
  List.concat (List.init (k - 1) (fun i -> both (node 0) (node (i + 1)) (cost i)))

(* A k x k grid: node n(i*k+j) at row i, column j, linked to its right
   and down neighbours (4-neighbour mesh). *)
let grid_links ?(cost = fun _ -> 1) k =
  let id i j = node ((i * k) + j) in
  let ls = ref [] in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if j + 1 < k then ls := both (id i j) (id i (j + 1)) (cost (i + j)) @ !ls;
      if i + 1 < k then ls := both (id i j) (id (i + 1) j) (cost (i + j)) @ !ls
    done
  done;
  !ls

(* A full mesh (use with care: the path relation grows factorially). *)
let mesh_links ?(cost = fun _ _ -> 1) k =
  let pairs = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      pairs := both (node i) (node j) (cost i j) @ !pairs
    done
  done;
  !pairs

(* A random connected graph: a random spanning tree plus [extra] random
   chords, deterministic in [seed]. *)
let random_links ?(seed = 42) ?(extra = 0) ?(max_cost = 10) k =
  let st = Random.State.make [| seed |] in
  let rand_cost () = 1 + Random.State.int st max_cost in
  let tree =
    List.concat
      (List.init (k - 1) (fun i ->
           let parent = Random.State.int st (i + 1) in
           both (node (i + 1)) (node parent) (rand_cost ())))
  in
  let rec chords n acc =
    if n = 0 then acc
    else
      let i = Random.State.int st k and j = Random.State.int st k in
      if i = j then chords n acc
      else chords (n - 1) (both (node i) (node j) (rand_cost ()) @ acc)
  in
  chords extra tree

(* All facts for a program instance. *)
let with_links (p : Ast.program) links = { p with Ast.facts = p.Ast.facts @ links }
