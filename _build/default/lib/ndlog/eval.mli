(** Centralized bottom-up evaluation of NDlog programs.

    Two evaluators share one rule-application core: {!naive} re-derives
    everything from the full database each round; {!seminaive} performs
    classic delta iteration.  Both respect stratification: strata are
    evaluated bottom-up, aggregate rules of a stratum run once at
    stratum entry (their inputs are complete), remaining rules run to
    fixpoint.

    Joins are index-aware: body literals with ground argument positions
    are answered from {!Store.lookup} secondary indexes, and rule
    bodies are reordered most-bound-first ({!order_body}); both
    optimizations fall back to the plain nested-loop scan (and can be
    disabled via {!use_indexes} / {!use_reordering}) without changing
    the fixpoint.  {!stats} reports index hits vs. scans and tuples
    enumerated vs. matched.

    Evaluation is bounded by [max_rounds]: a program with no finite
    fixpoint (e.g. distance-vector count-to-infinity on a cycle) is
    reported as not converged instead of looping. *)

(** The result of an evaluation. *)
type outcome = {
  db : Store.t;  (** the database reached *)
  rounds : int;  (** fixpoint rounds across all strata *)
  derivations : int;  (** head tuples produced, counting duplicates *)
  converged : bool;  (** false when [max_rounds] was hit *)
}

exception Eval_error of string

(** {1 Instrumentation and switches} *)

(** Join counters, cumulative since the last {!reset_stats}. *)
type stats = {
  index_hits : int;  (** joins answered from a secondary index *)
  scans : int;  (** joins answered by a full relation scan *)
  enumerated : int;  (** candidate tuples visited by joins *)
  matched : int;  (** candidates that unified with the pattern *)
}

val reset_stats : unit -> unit
val stats : unit -> stats
val pp_stats : stats Fmt.t

val use_indexes : bool ref
(** Consult secondary indexes for ground argument positions (default
    [true]).  Off: every join is a full scan — the pre-index
    nested-loop evaluator. *)

val use_reordering : bool ref
(** Reorder rule bodies most-bound-first before evaluation (default
    [true]). *)

val order_body :
  ?card:(string -> int) ->
  ?bound:Ast.Sset.t ->
  Ast.lit list ->
  Ast.lit list
(** Greedy join planning: filters (assignments, comparisons, negations)
    run as soon as their variables are bound; positive atoms are
    scheduled most-bound-first, ties broken by smaller relation
    ([card]) then source order.  [bound] seeds the bound-variable set
    (e.g. with the variables a delta literal binds).  Preserves the
    satisfying-environment set of any safe rule; identity when
    {!use_reordering} is off. *)

val atom_binds : Ast.atom -> Ast.Sset.t
(** The variables a positive atom binds when evaluated first (its bare
    variable arguments). *)

val body_envs :
  Store.t -> ?delta:int * Store.Tset.t -> Ast.lit list -> Env.t list
(** All satisfying environments for a rule body against a database.
    [delta] optionally replaces the relation read by the body literal at
    the given index (semi-naive evaluation); exposed for the distributed
    runtime and the plan compiler. *)

val join_envs : Store.t -> Env.t -> string -> Ast.expr list -> Env.t list
(** [join_envs db env pred args]: extend [env] with every tuple of
    [pred] that matches [args] — one index-aware join step, shared with
    the strand executor ({!Plan.execute}). *)

val head_tuple : Env.t -> Ast.head -> Store.Tuple.t
(** Instantiate an aggregate-free head under an environment. *)

val apply_agg_rule : Store.t -> Ast.rule -> Store.Tuple.t list
(** Evaluate an aggregate rule against the full database: group
    satisfying environments by the plain head arguments and fold the
    aggregate. *)

val seminaive :
  ?max_rounds:int -> Ast.program -> Analysis.info -> Store.t -> outcome
(** Semi-naive (delta) evaluation from an initial database. *)

val naive :
  ?max_rounds:int -> Ast.program -> Analysis.info -> Store.t -> outcome
(** Naive evaluation; same fixpoint as {!seminaive} (differentially
    tested), used as the E7 baseline. *)

val run :
  ?max_rounds:int ->
  ?extra_facts:Ast.fact list ->
  Ast.program ->
  (outcome, Analysis.error) result
(** Analyze and evaluate a self-contained program (its facts plus
    [extra_facts]). *)

val run_exn :
  ?max_rounds:int -> ?extra_facts:Ast.fact list -> Ast.program -> outcome
(** @raise Invalid_argument on analysis failure. *)

val run_source : ?max_rounds:int -> string -> (outcome, string) result
(** Parse source text and run it. *)
