(** Centralized bottom-up evaluation of NDlog programs.

    Two evaluators share one rule-application core: {!naive} re-derives
    everything from the full database each round; {!seminaive} performs
    classic delta iteration.  Both respect stratification: strata are
    evaluated bottom-up, aggregate rules of a stratum run once at
    stratum entry (their inputs are complete), remaining rules run to
    fixpoint.

    Evaluation is bounded by [max_rounds]: a program with no finite
    fixpoint (e.g. distance-vector count-to-infinity on a cycle) is
    reported as not converged instead of looping. *)

(** The result of an evaluation. *)
type outcome = {
  db : Store.t;  (** the database reached *)
  rounds : int;  (** fixpoint rounds across all strata *)
  derivations : int;  (** head tuples produced, counting duplicates *)
  converged : bool;  (** false when [max_rounds] was hit *)
}

exception Eval_error of string

val body_envs :
  Store.t -> ?delta:int * Store.Tset.t -> Ast.lit list -> Env.t list
(** All satisfying environments for a rule body against a database.
    [delta] optionally replaces the relation read by the body literal at
    the given index (semi-naive evaluation); exposed for the distributed
    runtime and the plan compiler. *)

val head_tuple : Env.t -> Ast.head -> Store.Tuple.t
(** Instantiate an aggregate-free head under an environment. *)

val apply_agg_rule : Store.t -> Ast.rule -> Store.Tuple.t list
(** Evaluate an aggregate rule against the full database: group
    satisfying environments by the plain head arguments and fold the
    aggregate. *)

val seminaive :
  ?max_rounds:int -> Ast.program -> Analysis.info -> Store.t -> outcome
(** Semi-naive (delta) evaluation from an initial database. *)

val naive :
  ?max_rounds:int -> Ast.program -> Analysis.info -> Store.t -> outcome
(** Naive evaluation; same fixpoint as {!seminaive} (differentially
    tested), used as the E7 baseline. *)

val run :
  ?max_rounds:int ->
  ?extra_facts:Ast.fact list ->
  Ast.program ->
  (outcome, Analysis.error) result
(** Analyze and evaluate a self-contained program (its facts plus
    [extra_facts]). *)

val run_exn :
  ?max_rounds:int -> ?extra_facts:Ast.fact list -> Ast.program -> outcome
(** @raise Invalid_argument on analysis failure. *)

val run_source : ?max_rounds:int -> string -> (outcome, string) result
(** Parse source text and run it. *)
