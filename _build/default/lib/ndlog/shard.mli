(** Sharding a tuple store by the location-specifier column.

    The localization rewrite ({!Localize}) makes every rule body read
    tuples at a single node, so the location column is a correct shard
    key by construction: {!partition} splits every located relation by
    its location value, {!route} classifies freshly derived tuples into
    shard-local, foreign (to be exchanged — exactly the tuples the
    distributed runtime would send as messages), and replicated, and
    {!merge} reassembles the global database.  {!Eval.seminaive_sharded}
    runs per-shard semi-naive fixpoints over this decomposition.

    {!analyze} decides shardability; it is stricter than
    {!Localize.check_localized} (consistent location columns per
    predicate, one shared bare location variable per body, aggregates
    grouped by location) — programs that fail it are evaluated
    centrally. *)

type plan
(** Per-predicate location columns of a shardable program. *)

val analyze : Ast.program -> (plan, string) result
(** Shardability: every occurrence of a predicate agrees on its
    location column; every located body atom of a rule carries the same
    bare location variable; aggregate heads over located bodies group
    by that variable.  The [Error] explains why the program must fall
    back to centralized evaluation. *)

val loc_index : plan -> string -> int option
(** The location column of a predicate ([None]: unlocated). *)

val loc_value : plan -> string -> Store.Tuple.t -> Value.t option
(** The shard key of a tuple: its location-column value, [None] for
    unlocated predicates (replicated) or tuples lacking the column. *)

val partition : plan -> Store.t -> (Value.t * Store.t) array * Store.t
(** Split a database into per-location stores (sorted by shard key) and
    the replicated remainder (unlocated relations).  The parts are
    disjoint and [merge (partition db) = db]. *)

val merge : (Value.t * Store.t) array -> Store.t -> Store.t
(** Union the per-shard stores and the replicated store back into one
    database. *)

(** Freshly derived tuples, classified from one shard's point of view. *)
type routed = {
  local : Store.t;  (** kept by this shard (located here, or unlocated) *)
  foreign : (Value.t * string * Store.Tuple.t) list;
      (** located at another shard: [(dest, pred, tuple)] exchange
          messages *)
  everywhere : Store.t;  (** unlocated: broadcast to every shard *)
}

val route : plan -> self:Value.t -> Store.t -> routed

(** {1 Address-level view}

    Used by the distributed runtime, which identifies nodes by
    simulator address rather than by raw location value. *)

val loc_index_map : Ast.program -> (string, int) Hashtbl.t
(** The location column declared for each predicate, collected from
    rule heads, facts, and body atoms. *)

val tuple_location : int option -> Store.Tuple.t -> string option
(** Owner address of a tuple given its predicate's location column.
    @raise Value.Type_error if the location value is not an address. *)
