(** Canonical NDlog programs from the paper and its companion reports,
    plus deterministic topology generators for tests, examples, and
    benchmarks. *)

val path_vector_src : string
(** The paper's Section-2.2 path-vector protocol, verbatim: rules
    [r1]–[r4] computing [path], [bestPathCost] (a [min] aggregate), and
    [bestPath]. *)

val distance_vector_src : string
(** Distance-vector without a path vector: no cycle check, so a cyclic
    topology has no finite fixpoint (count-to-infinity; Section 3.1). *)

val bounded_distance_vector_src : max_hops:int -> string
(** Distance-vector with a hop bound: converges (the RIP-style fix). *)

val reachability_src : string
(** Transitive reachability over [link]. *)

val link_state_src : max_hops:int -> string
(** Link-state routing: LSA flooding until all nodes share the link
    map, then hop-bounded local shortest-path computation ([lsCost] is
    each node's best cost per destination).  Already localized. *)

val heartbeat_src : lifetime:int -> string
(** A soft-state heartbeat: [ping] refreshes [aliveNeighbor]; both
    expire after [lifetime] seconds without refresh. *)

val parse_exn : string -> Ast.program
(** @raise Invalid_argument on parse errors. *)

val path_vector : unit -> Ast.program
val distance_vector : unit -> Ast.program
val bounded_distance_vector : max_hops:int -> Ast.program
val reachability : unit -> Ast.program
val link_state : max_hops:int -> Ast.program
val heartbeat : lifetime:int -> Ast.program

(** {1 Topology generators}

    All generators produce symmetric link facts over nodes named
    [n0 .. n(k-1)]. *)

val node : int -> string
(** [node i] is ["n<i>"]. *)

val link_fact : string -> string -> int -> Ast.fact
(** A single directed [link(@s,d,c)] fact. *)

val both : string -> string -> int -> Ast.fact list
(** Both directions of a link. *)

val line_links : ?cost:(int -> int) -> int -> Ast.fact list
(** A chain [n0 - n1 - ... - n(k-1)]. *)

val ring_links : ?cost:(int -> int) -> int -> Ast.fact list
val star_links : ?cost:(int -> int) -> int -> Ast.fact list

val grid_links : ?cost:(int -> int) -> int -> Ast.fact list
(** A [k x k] grid: node [n(i*k+j)] at row [i], column [j], linked to
    its right and down neighbours. *)

val mesh_links : ?cost:(int -> int -> int) -> int -> Ast.fact list
(** Full mesh; beware: the [path] relation grows factorially. *)

val random_links :
  ?seed:int -> ?extra:int -> ?max_cost:int -> int -> Ast.fact list
(** A random connected graph: a random spanning tree plus [extra]
    random chords; deterministic in [seed]. *)

val with_links : Ast.program -> Ast.fact list -> Ast.program
(** Append link facts to a program. *)
