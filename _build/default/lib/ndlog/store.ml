(* Ground-tuple storage: a database mapping predicate names to sets of
   tuples.  Tuples are arrays of values compared lexicographically, so a
   store is a deterministic, canonical representation of a database
   state (used directly as model-checker state).

   Each relation additionally carries a *secondary-index cache*: maps
   from a column set to (key -> tuple set), built lazily the first time
   a join asks for that column set ({!lookup}) and maintained
   incrementally across [add]/[remove]/[union].  The cache is pure
   memoization — it never influences [equal]/[compare]/[hash], so the
   model checker's state canonicity is untouched; mutating the cache of
   a shared persistent value is benign (both sharers want the same
   index). *)

module Tuple = struct
  type t = Value.t array

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    let c = Stdlib.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i >= la then 0
        else
          let c = Value.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

  let equal a b = compare a b = 0

  let pp ppf (t : t) =
    Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ",") Value.pp) t

  let hash (t : t) =
    Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t
end

module Tset = Set.Make (Tuple)
module Smap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Secondary indexes. *)

(* Index keys: the tuple's values at the indexed columns, in column
   order.  Compared with Value.compare so key equality coincides with
   tuple-value equality (never Stdlib.compare, which would be a
   separate notion of equality from the engine's). *)
module Vkey = struct
  type t = Value.t list

  let rec compare a b =
    match a, b with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: a', y :: b' ->
      let c = Value.compare x y in
      if c <> 0 then c else compare a' b'
end

module Vmap = Map.Make (Vkey)

(* Column sets are strictly increasing position lists; Stdlib.compare
   is a correct total order on [int list]. *)
module Cmap = Map.Make (struct
  type t = int list

  let compare = Stdlib.compare
end)

type index = Tset.t Vmap.t

type rel = {
  tuples : Tset.t;
  mutable indexes : index Cmap.t;  (* lazily built; cache only *)
}

type t = rel Smap.t

let mkrel tuples = { tuples; indexes = Cmap.empty }

(* The key of [tuple] at [cols], or [None] when the tuple is too short
   to have all indexed columns (such a tuple can never match a pattern
   binding those positions, so it is safely absent from the index). *)
let key_at cols (tuple : Tuple.t) : Value.t list option =
  let n = Array.length tuple in
  let rec go = function
    | [] -> Some []
    | c :: rest ->
      if c >= n then None
      else Option.map (fun k -> tuple.(c) :: k) (go rest)
  in
  go cols

let index_add cols tuple (idx : index) : index =
  match key_at cols tuple with
  | None -> idx
  | Some key ->
    Vmap.update key
      (function
        | None -> Some (Tset.singleton tuple)
        | Some s -> Some (Tset.add tuple s))
      idx

let index_remove cols tuple (idx : index) : index =
  match key_at cols tuple with
  | None -> idx
  | Some key ->
    Vmap.update key
      (function
        | None -> None
        | Some s ->
          let s' = Tset.remove tuple s in
          if Tset.is_empty s' then None else Some s')
      idx

let build_index cols (tuples : Tset.t) : index =
  Tset.fold (index_add cols) tuples Vmap.empty

(* ------------------------------------------------------------------ *)
(* The canonical (indexed-cache-free) API. *)

let empty : t = Smap.empty

let relation pred (db : t) : Tset.t =
  match Smap.find_opt pred db with Some r -> r.tuples | None -> Tset.empty

let tuples pred (db : t) : Tuple.t list = Tset.elements (relation pred db)

let mem pred tuple (db : t) = Tset.mem tuple (relation pred db)

let add pred tuple (db : t) : t =
  Smap.update pred
    (function
      | None -> Some (mkrel (Tset.singleton tuple))
      | Some r ->
        if Tset.mem tuple r.tuples then Some r
        else
          Some
            {
              tuples = Tset.add tuple r.tuples;
              indexes = Cmap.mapi (fun cols -> index_add cols tuple) r.indexes;
            })
    db

let remove pred tuple (db : t) : t =
  Smap.update pred
    (function
      | None -> None
      | Some r ->
        if not (Tset.mem tuple r.tuples) then Some r
        else
          let tuples = Tset.remove tuple r.tuples in
          if Tset.is_empty tuples then None
          else
            Some
              {
                tuples;
                indexes =
                  Cmap.mapi (fun cols -> index_remove cols tuple) r.indexes;
              })
    db

let add_list pred ts db = List.fold_left (fun db t -> add pred t db) db ts

(* Replacing a relation wholesale invalidates its indexes: they are
   rebuilt lazily on the next lookup. *)
let set_relation pred s (db : t) : t =
  if Tset.is_empty s then Smap.remove pred db else Smap.add pred (mkrel s) db

let preds (db : t) = List.map fst (Smap.bindings db)

let cardinal pred db = Tset.cardinal (relation pred db)

let total_tuples (db : t) =
  Smap.fold (fun _ r acc -> acc + Tset.cardinal r.tuples) db 0

(* Union of two databases; used to merge deltas.  The left operand is
   the accumulating database in every hot path ([db ∪ delta]), so its
   index caches are kept warm by folding the (typically small) right
   side through them. *)
let union (a : t) (b : t) : t =
  Smap.union
    (fun _ x y ->
      let tuples = Tset.union x.tuples y.tuples in
      let indexes =
        if Cmap.is_empty x.indexes then Cmap.empty
        else
          Cmap.mapi
            (fun cols idx -> Tset.fold (index_add cols) y.tuples idx)
            x.indexes
      in
      Some { tuples; indexes })
    a b

(* Tuples of [b] not already in [a], per predicate. *)
let diff (b : t) (a : t) : t =
  Smap.filter_map
    (fun pred r ->
      let s' = Tset.diff r.tuples (relation pred a) in
      if Tset.is_empty s' then None else Some (mkrel s'))
    b

let is_empty (db : t) = Smap.for_all (fun _ r -> Tset.is_empty r.tuples) db

let nonempty (db : t) = Smap.filter (fun _ r -> not (Tset.is_empty r.tuples)) db

let equal (a : t) (b : t) =
  Smap.equal (fun x y -> Tset.equal x.tuples y.tuples) (nonempty a) (nonempty b)

let compare (a : t) (b : t) =
  Smap.compare
    (fun x y -> Tset.compare x.tuples y.tuples)
    (nonempty a) (nonempty b)

let of_facts (facts : Ast.fact list) : t =
  List.fold_left
    (fun db (f : Ast.fact) -> add f.Ast.fact_pred (Array.of_list f.Ast.fact_args) db)
    empty facts

let fold_rel pred f (db : t) acc = Tset.fold f (relation pred db) acc

let iter_rel pred f (db : t) = Tset.iter f (relation pred db)

let pp ppf (db : t) =
  Smap.iter
    (fun pred r ->
      Tset.iter (fun t -> Fmt.pf ppf "%s%a@." pred Tuple.pp t) r.tuples)
    db

let to_string db = Fmt.str "%a" pp db

(* Restrict a database to the given predicates (index caches ride
   along: the kept relations are unchanged). *)
let restrict preds (db : t) : t =
  Smap.filter (fun p _ -> List.mem p preds) db

(* All tuples as (pred, tuple) pairs, deterministically ordered. *)
let to_list (db : t) : (string * Tuple.t) list =
  Smap.fold
    (fun pred r acc -> Tset.fold (fun t acc -> (pred, t) :: acc) r.tuples acc)
    db []
  |> List.rev

let hash (db : t) =
  Smap.fold
    (fun pred r acc ->
      Tset.fold
        (fun t acc -> (acc * 31) + Tuple.hash t)
        r.tuples
        ((acc * 31) + Hashtbl.hash pred))
    db 11

(* ------------------------------------------------------------------ *)
(* Indexed lookup. *)

(* Find or build the [(pred, cols)] index of [r].  Benign memoization:
   older copies of a store sharing [r] would build the very same index,
   and a racing domain at worst loses the other's cache entry (the
   tuple sets themselves are immutable), so concurrent lookups from the
   sharded evaluator are safe. *)
let get_index (r : rel) (cols : int list) : index =
  match Cmap.find_opt cols r.indexes with
  | Some idx -> idx
  | None ->
    let idx = build_index cols r.tuples in
    r.indexes <- Cmap.add cols idx r.indexes;
    idx

let lookup pred ~(cols : int list) ~(key : Value.t list) (db : t) : Tset.t =
  match Smap.find_opt pred db with
  | None -> Tset.empty
  | Some r -> (
    match Vmap.find_opt key (get_index r cols) with
    | Some s -> s
    | None -> Tset.empty)

(* All groups of a relation under the [(pred, cols)] index, in key
   order: the grouped probe used by index-aware aggregate evaluation
   ({!Eval.apply_agg_rule}). *)
let groups pred ~(cols : int list) (db : t) : (Value.t list * Tset.t) list =
  match Smap.find_opt pred db with
  | None -> []
  | Some r -> Vmap.bindings (get_index r cols)

let index_count (db : t) =
  Smap.fold (fun _ r acc -> acc + Cmap.cardinal r.indexes) db 0

let indexed_cols pred (db : t) : int list list =
  match Smap.find_opt pred db with
  | None -> []
  | Some r -> List.map fst (Cmap.bindings r.indexes)
