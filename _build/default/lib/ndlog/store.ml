(* Ground-tuple storage: a database mapping predicate names to sets of
   tuples.  Tuples are arrays of values compared lexicographically, so a
   store is a deterministic, canonical representation of a database
   state (used directly as model-checker state). *)

module Tuple = struct
  type t = Value.t array

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    let c = Stdlib.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i >= la then 0
        else
          let c = Value.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

  let equal a b = compare a b = 0

  let pp ppf (t : t) =
    Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ",") Value.pp) t

  let hash (t : t) =
    Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t
end

module Tset = Set.Make (Tuple)
module Smap = Map.Make (String)

type t = Tset.t Smap.t

let empty : t = Smap.empty

let relation pred (db : t) : Tset.t =
  match Smap.find_opt pred db with Some s -> s | None -> Tset.empty

let tuples pred (db : t) : Tuple.t list = Tset.elements (relation pred db)

let mem pred tuple (db : t) = Tset.mem tuple (relation pred db)

let add pred tuple (db : t) : t =
  Smap.update pred
    (function
      | None -> Some (Tset.singleton tuple)
      | Some s -> Some (Tset.add tuple s))
    db

let remove pred tuple (db : t) : t =
  Smap.update pred
    (function
      | None -> None
      | Some s ->
        let s' = Tset.remove tuple s in
        if Tset.is_empty s' then None else Some s')
    db

let add_list pred ts db = List.fold_left (fun db t -> add pred t db) db ts

let set_relation pred s (db : t) : t =
  if Tset.is_empty s then Smap.remove pred db else Smap.add pred s db

let preds (db : t) = List.map fst (Smap.bindings db)

let cardinal pred db = Tset.cardinal (relation pred db)

let total_tuples (db : t) =
  Smap.fold (fun _ s acc -> acc + Tset.cardinal s) db 0

(* Union of two databases; used to merge deltas. *)
let union (a : t) (b : t) : t =
  Smap.union (fun _ x y -> Some (Tset.union x y)) a b

(* Tuples of [b] not already in [a], per predicate. *)
let diff (b : t) (a : t) : t =
  Smap.filter_map
    (fun pred s ->
      let s' = Tset.diff s (relation pred a) in
      if Tset.is_empty s' then None else Some s')
    b

let is_empty (db : t) = Smap.for_all (fun _ s -> Tset.is_empty s) db

let equal (a : t) (b : t) =
  Smap.equal Tset.equal
    (Smap.filter (fun _ s -> not (Tset.is_empty s)) a)
    (Smap.filter (fun _ s -> not (Tset.is_empty s)) b)

let compare (a : t) (b : t) =
  Smap.compare Tset.compare
    (Smap.filter (fun _ s -> not (Tset.is_empty s)) a)
    (Smap.filter (fun _ s -> not (Tset.is_empty s)) b)

let of_facts (facts : Ast.fact list) : t =
  List.fold_left
    (fun db (f : Ast.fact) -> add f.Ast.fact_pred (Array.of_list f.Ast.fact_args) db)
    empty facts

let fold_rel pred f (db : t) acc = Tset.fold f (relation pred db) acc

let iter_rel pred f (db : t) = Tset.iter f (relation pred db)

let pp ppf (db : t) =
  Smap.iter
    (fun pred s ->
      Tset.iter (fun t -> Fmt.pf ppf "%s%a@." pred Tuple.pp t) s)
    db

let to_string db = Fmt.str "%a" pp db

(* Restrict a database to the given predicates. *)
let restrict preds (db : t) : t =
  Smap.filter (fun p _ -> List.mem p preds) db

(* All tuples as (pred, tuple) pairs, deterministically ordered. *)
let to_list (db : t) : (string * Tuple.t) list =
  Smap.fold
    (fun pred s acc -> Tset.fold (fun t acc -> (pred, t) :: acc) s acc)
    db []
  |> List.rev

let hash (db : t) =
  Smap.fold
    (fun pred s acc ->
      Tset.fold
        (fun t acc -> (acc * 31) + Tuple.hash t)
        s
        ((acc * 31) + Hashtbl.hash pred))
    db 11
