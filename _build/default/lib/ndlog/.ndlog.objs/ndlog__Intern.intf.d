lib/ndlog/intern.mli: Value
