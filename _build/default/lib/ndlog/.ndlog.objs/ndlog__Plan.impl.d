lib/ndlog/plan.ml: Array Ast Env Eval Fmt List Store String Value
