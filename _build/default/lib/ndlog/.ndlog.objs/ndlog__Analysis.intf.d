lib/ndlog/analysis.mli: Ast Fmt Map Set String
