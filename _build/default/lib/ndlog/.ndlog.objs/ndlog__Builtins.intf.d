lib/ndlog/builtins.mli: Value
