lib/ndlog/env.ml: Array Ast Builtins List Map String Value
