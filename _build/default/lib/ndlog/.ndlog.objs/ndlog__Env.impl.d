lib/ndlog/env.ml: Array Ast Builtins Intern List Map String Value
