lib/ndlog/lexer.ml: Buffer Printf String
