lib/ndlog/provenance.ml: Array Ast Env Eval Fmt List Store String Value
