lib/ndlog/analysis.ml: Ast Fmt Hashtbl List Map Result Set String
