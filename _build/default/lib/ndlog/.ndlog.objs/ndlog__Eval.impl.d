lib/ndlog/eval.ml: Analysis Array Ast Env Fmt List Map Parser Set Stdlib Store String Value
