lib/ndlog/eval.ml: Analysis Array Ast Domain Env Fmt Hashtbl Int Intern List Map Option Parser Pool Seq Set Shard Stdlib Store String Value
