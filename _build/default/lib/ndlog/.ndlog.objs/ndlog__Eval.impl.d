lib/ndlog/eval.ml: Analysis Array Ast Env Fmt List Map Parser Stdlib Store String Value
