lib/ndlog/builtins.ml: List Value
