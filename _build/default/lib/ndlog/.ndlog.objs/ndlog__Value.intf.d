lib/ndlog/value.mli: Fmt
