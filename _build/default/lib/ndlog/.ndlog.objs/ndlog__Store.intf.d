lib/ndlog/store.mli: Ast Fmt Set Value
