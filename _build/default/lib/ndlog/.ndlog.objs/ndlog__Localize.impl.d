lib/ndlog/localize.ml: Analysis Ast Fmt List Option Printf Result String
