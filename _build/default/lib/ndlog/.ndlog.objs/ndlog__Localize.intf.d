lib/ndlog/localize.mli: Ast Fmt
