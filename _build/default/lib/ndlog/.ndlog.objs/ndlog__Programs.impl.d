lib/ndlog/programs.ml: Ast List Parser Printf Random Value
