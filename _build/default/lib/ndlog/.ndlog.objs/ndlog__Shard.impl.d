lib/ndlog/shard.ml: Array Ast Format Hashtbl List Map Option Result Store String Value
