lib/ndlog/programs.mli: Ast
