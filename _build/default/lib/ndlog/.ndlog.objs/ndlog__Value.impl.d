lib/ndlog/value.ml: Fmt Hashtbl List Stdlib String
