lib/ndlog/store.ml: Array Ast Fmt Hashtbl List Map Option Set Stdlib String Value
