lib/ndlog/store.ml: Array Ast Fmt Hashtbl List Map Set Stdlib String Value
