lib/ndlog/store.ml: Array Ast Fmt Hashtbl Intern List Map Mutex Option Set Stdlib String Sys Value
