lib/ndlog/ast.mli: Fmt Set String Value
