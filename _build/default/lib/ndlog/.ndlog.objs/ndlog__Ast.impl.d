lib/ndlog/ast.ml: Fmt List Set String Value
