lib/ndlog/parser.ml: Ast Builtins Lexer List Option Printf Value
