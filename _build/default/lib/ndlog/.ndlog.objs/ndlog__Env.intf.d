lib/ndlog/env.mli: Ast Value
