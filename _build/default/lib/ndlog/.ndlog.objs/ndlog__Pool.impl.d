lib/ndlog/pool.ml: Array Condition Domain Fun List Mutex
