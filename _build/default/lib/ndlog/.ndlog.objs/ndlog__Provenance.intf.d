lib/ndlog/provenance.mli: Ast Fmt Store Value
