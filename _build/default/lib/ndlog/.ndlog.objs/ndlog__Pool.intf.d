lib/ndlog/pool.mli:
