lib/ndlog/softstate.mli: Analysis Ast Eval Store
