lib/ndlog/softstate.ml: Analysis Ast Eval Float List Map Printf Store String Value
