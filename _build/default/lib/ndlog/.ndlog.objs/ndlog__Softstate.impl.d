lib/ndlog/softstate.ml: Analysis Ast Eval List Map Printf Store String Value
