lib/ndlog/intern.ml: Array Hashtbl List Mutex Printf Sys Value
