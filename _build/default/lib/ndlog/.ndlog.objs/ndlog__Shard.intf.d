lib/ndlog/shard.mli: Ast Hashtbl Store Value
