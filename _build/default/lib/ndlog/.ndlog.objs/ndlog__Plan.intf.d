lib/ndlog/plan.mli: Ast Eval Fmt Store
