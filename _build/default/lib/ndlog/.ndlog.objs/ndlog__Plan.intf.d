lib/ndlog/plan.mli: Ast Fmt Store
