lib/ndlog/eval.mli: Analysis Ast Env Store
