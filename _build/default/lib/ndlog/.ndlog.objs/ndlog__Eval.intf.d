lib/ndlog/eval.mli: Analysis Ast Env Fmt Store
