bench/main.ml: Algebra Analyze Array Bechamel Benchmark Component Dist Float Fmt Fvn Hashtbl Json List Logic Mcheck Measure Ndlog Netsim Option Printf Spp Staged String Sys Test Time Toolkit
