bench/test_json.ml: Fmt Int64 Json List
