bench/test_json.mli:
