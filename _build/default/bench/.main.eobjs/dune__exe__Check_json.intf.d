bench/check_json.mli:
