bench/main.mli:
