bench/check_json.ml: Array Fmt Json List Option Sys
