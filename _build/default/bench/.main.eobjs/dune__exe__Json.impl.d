bench/json.ml: Buffer Char Fun List Printf String
