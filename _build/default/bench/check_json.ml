(* Smoke check for the benchmark ledger: BENCH_ndlog.json must parse
   and carry a non-empty E7 sweep with indexed and baseline timings.
   Run by the @bench-smoke alias so a broken emitter (or a regression
   that stops the sweep from completing) fails the build loudly. *)

let fail fmt = Fmt.kstr (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_ndlog.json" in
  match Json.of_file path with
  | Error e -> fail "%s: does not parse: %s" path e
  | Ok v ->
    (match Json.member "experiment" v with
    | Some (Json.Str "e7") -> ()
    | _ -> fail "%s: missing experiment=e7" path);
    let sweeps =
      match Option.bind (Json.member "sweeps" v) Json.as_arr with
      | Some (_ :: _ as s) -> s
      | _ -> fail "%s: empty or missing sweeps" path
    in
    List.iteri
      (fun i row ->
        List.iter
          (fun k ->
            match Json.member k row with
            | Some _ -> ()
            | None -> fail "%s: sweep %d lacks %S" path i k)
          [
            "program"; "topology"; "n"; "tuples"; "indexed_ms"; "baseline_ms";
            "speedup"; "same_fixpoint";
          ];
        match Json.member "same_fixpoint" row with
        | Some (Json.Bool true) -> ()
        | _ -> fail "%s: sweep %d fixpoints diverge" path i)
      sweeps;
    Fmt.pr "%s: ok (%d sweep rows)@." path (List.length sweeps)
