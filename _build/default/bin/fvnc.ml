(* fvnc: the FVN command-line driver.

   Subcommands mirror the framework's arcs (Figure 1 of the paper):

     fvnc check FILE        parse + static analysis (safety, stratification)
     fvnc run FILE          evaluate centrally, print derived relations
     fvnc dist FILE         localize + run distributed over the simulator
     fvnc localize FILE     print the localized rewrite
     fvnc spec FILE         print the logical specification (completion)
     fvnc prove FILE        verify built-in property classes
     fvnc softstate FILE    print the hard-state rewrite

   FILE is an NDlog source file; pass - for stdin. *)

open Cmdliner

let read_file path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let load path =
  match Ndlog.Parser.parse_program (read_file path) with
  | Ok p -> Ok p
  | Error e -> Error e

let or_die = function
  | Ok v -> v
  | Error e ->
    Fmt.epr "fvnc: %s@." e;
    exit 1

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"NDlog source file ($(b,-) for stdin).")

(* ------------------------------------------------------------------ *)
(* check *)

let check_cmd =
  let run path =
    let p = or_die (load path) in
    match Ndlog.Analysis.analyze p with
    | Error e ->
      Fmt.epr "fvnc: %a@." Ndlog.Analysis.pp_error e;
      exit 1
    | Ok info ->
      Fmt.pr "%d rules, %d facts, %d declarations@."
        (List.length p.Ndlog.Ast.rules)
        (List.length p.Ndlog.Ast.facts)
        (List.length p.Ndlog.Ast.decls);
      Fmt.pr "base relations:    %a@."
        Fmt.(list ~sep:(any ", ") string)
        info.Ndlog.Analysis.base_preds;
      Fmt.pr "derived relations: %a@."
        Fmt.(list ~sep:(any ", ") string)
        info.Ndlog.Analysis.derived_preds;
      List.iteri
        (fun i stratum ->
          Fmt.pr "stratum %d: %a@." i Fmt.(list ~sep:(any ", ") string) stratum)
        info.Ndlog.Analysis.strata;
      (match Ndlog.Localize.check_localized p with
      | Ok () -> Fmt.pr "localization: already localized@."
      | Error _ -> Fmt.pr "localization: rewrite required (see fvnc localize)@.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and statically analyze an NDlog program.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* run *)

let relation_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "r"; "relation" ] ~docv:"PRED"
        ~doc:"Only print this relation (repeatable; default: all derived).")

let max_rounds_arg =
  Arg.(
    value
    & opt int 10_000
    & info [ "max-rounds" ] ~docv:"N"
        ~doc:"Evaluation round bound (non-convergence is reported).")

let print_relations db preds =
  List.iter
    (fun pred ->
      let tuples = Ndlog.Store.tuples pred db in
      Fmt.pr "%s (%d tuples):@." pred (List.length tuples);
      List.iter (fun t -> Fmt.pr "  %s%a@." pred Ndlog.Store.Tuple.pp t) tuples)
    preds

let run_cmd =
  let run path relations max_rounds =
    let p = or_die (load path) in
    match Ndlog.Eval.run ~max_rounds p with
    | Error e ->
      Fmt.epr "fvnc: %a@." Ndlog.Analysis.pp_error e;
      exit 1
    | Ok o ->
      Fmt.pr "converged=%b rounds=%d derivations=%d@." o.Ndlog.Eval.converged
        o.Ndlog.Eval.rounds o.Ndlog.Eval.derivations;
      let preds =
        if relations <> [] then relations
        else
          let info = Ndlog.Analysis.analyze_exn p in
          info.Ndlog.Analysis.derived_preds
      in
      print_relations o.Ndlog.Eval.db preds;
      if not o.Ndlog.Eval.converged then exit 2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Evaluate an NDlog program with the centralized engine.")
    Term.(const run $ file_arg $ relation_arg $ max_rounds_arg)

(* ------------------------------------------------------------------ *)
(* dist *)

let dist_cmd =
  let run path relations =
    let p = or_die (load path) in
    match Fvn.Pipeline.execute_distributed p with
    | Error e ->
      Fmt.epr "fvnc: %s@." e;
      exit 1
    | Ok (Fvn.Pipeline.Distributed { report; global; _ }) ->
      let s = report.Dist.Runtime.stats in
      Fmt.pr
        "quiesced=%b simulated_time=%.2f messages=%d dropped=%d inserts=%d@."
        s.Netsim.Sim.quiesced s.Netsim.Sim.final_time
        s.Netsim.Sim.messages_delivered s.Netsim.Sim.messages_dropped
        report.Dist.Runtime.total_inserts;
      let preds =
        if relations <> [] then relations
        else
          let info = Ndlog.Analysis.analyze_exn p in
          info.Ndlog.Analysis.derived_preds
      in
      print_relations global preds
    | Ok (Fvn.Pipeline.Central _) -> assert false
  in
  Cmd.v
    (Cmd.info "dist"
       ~doc:
         "Localize and run an NDlog program distributed over the network \
          simulator (topology derived from link facts).")
    Term.(const run $ file_arg $ relation_arg)

(* ------------------------------------------------------------------ *)
(* localize *)

let localize_cmd =
  let run path =
    let p = or_die (load path) in
    match Ndlog.Localize.rewrite_program p with
    | Error e ->
      Fmt.epr "fvnc: %a@." Ndlog.Localize.pp_error e;
      exit 1
    | Ok r ->
      List.iter
        (fun (pred, from_i, to_i) ->
          Fmt.pr "%% relocated %s from position %d to position %d@." pred
            from_i to_i)
        r.Ndlog.Localize.relocations;
      Fmt.pr "%a" Ndlog.Ast.pp_program r.Ndlog.Localize.program
  in
  Cmd.v
    (Cmd.info "localize"
       ~doc:"Rewrite a program so every rule body reads a single location.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* spec *)

let spec_cmd =
  let run path =
    let p = or_die (load path) in
    (match Ndlog.Analysis.analyze p with
    | Error e ->
      Fmt.epr "fvnc: %a@." Ndlog.Analysis.pp_error e;
      exit 1
    | Ok _ -> ());
    Fmt.pr "%a" Logic.Theory.pp (Logic.Completion.theory_of_program p)
  in
  Cmd.v
    (Cmd.info "spec"
       ~doc:
         "Compile a program into its logical specification (iff-completions \
          and aggregate axioms; arc 4 of the paper).")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* prove *)

let known_props =
  [
    ("route-optimality", fun () -> Fvn.Props.route_optimality ());
    ("aggregate-membership", fun () -> Fvn.Props.aggregate_membership ());
    ("one-hop-paths", fun () -> Fvn.Props.one_hop_paths ());
    ("aggregate-functional", fun () -> Fvn.Props.aggregate_functional ());
  ]

let prop_arg =
  Arg.(
    value
    & opt_all (enum (List.map (fun (n, f) -> (n, (n, f))) known_props)) []
    & info [ "p"; "property" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Property to verify (repeatable). One of: %s."
             (String.concat ", " (List.map fst known_props))))

let show_proof_arg =
  Arg.(value & flag & info [ "show-proof" ] ~doc:"Print the accepted proof tree.")

let goal_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "g"; "goal" ] ~docv:"FORMULA"
        ~doc:
          "A property stated as a formula (repeatable), e.g. $(i,forall S D \
           P C. bestPath(S,D,P,C) => ~(exists P2 C2. path(S,D,P2,C2) /\\ C2 \
           < C)).")

let assume_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "assume" ] ~docv:"FORMULA"
        ~doc:
          "A hypothesis available to the proofs (repeatable), e.g. \
           $(i,forall S D C. link(S,D,C) => 1 <= C).")

let induct_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "induct" ] ~docv:"PRED"
        ~doc:"Prove by fixpoint induction on this predicate.")

let prove_cmd =
  let run path props goals assumes induct show_proof =
    let p = or_die (load path) in
    let hyps =
      List.map
        (fun src ->
          match Logic.Fparser.parse src with
          | Ok f -> f
          | Error e ->
            Fmt.epr "fvnc: cannot parse assumption %S: %s@." src e;
            exit 1)
        assumes
    in
    let named = List.map (fun (_, f) -> f ()) props in
    let stated =
      List.mapi
        (fun i src ->
          match Logic.Fparser.parse src with
          | Ok f -> Fvn.Props.make (Printf.sprintf "goal_%d" (i + 1)) f
          | Error e ->
            Fmt.epr "fvnc: cannot parse goal %S: %s@." src e;
            exit 1)
        goals
    in
    let props =
      match named @ stated with
      | [] -> List.map (fun (_, f) -> f ()) known_props
      | l -> l
    in
    match induct with
    | Some pred ->
      (* induction mode: each property proved by fixpoint induction *)
      let thy = Logic.Completion.theory_of_program p in
      let failed = ref false in
      List.iter
        (fun (prop : Fvn.Props.t) ->
          match
            Logic.Prove.prove_by_induction thy ~hyps ~on:pred
              prop.Fvn.Props.formula
          with
          | Ok o ->
            Fmt.pr "  PROVED %s by induction on %s (%d proof steps)@."
              prop.Fvn.Props.prop_name pred o.Logic.Prove.steps;
            if show_proof then Fmt.pr "%a" Logic.Proof.pp o.Logic.Prove.proof
          | Error e ->
            failed := true;
            Fmt.pr "  FAILED %s: %s@." prop.Fvn.Props.prop_name e)
        props;
      if !failed then exit 2
    | None -> (
      (* Fold assumptions into each goal as antecedents. *)
      let props =
        List.map
          (fun (prop : Fvn.Props.t) ->
            {
              prop with
              Fvn.Props.formula =
                List.fold_right Logic.Formula.imp hyps prop.Fvn.Props.formula;
            })
          props
      in
      match Fvn.Pipeline.verify_program p props with
      | Error e ->
        Fmt.epr "fvnc: %s@." e;
        exit 1
      | Ok v ->
        Fmt.pr "%a" Fvn.Pipeline.pp_verification v;
        if show_proof then
          List.iter
            (fun r ->
              match r.Fvn.Pipeline.verdict with
              | `Proved o ->
                Fmt.pr "@.proof of %s:@.%a"
                  r.Fvn.Pipeline.property.Fvn.Props.prop_name Logic.Proof.pp
                  o.Logic.Prove.proof
              | `Failed _ -> ())
            v.Fvn.Pipeline.results;
        if not (Fvn.Pipeline.proved v) then exit 2)
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Statically verify properties of a program with the theorem prover \
          (arcs 4-5); proofs are kernel-checked.  Properties come from \
          $(b,--property) (built-in classes) and/or $(b,--goal) (stated \
          formulas); with neither, all built-in classes are attempted.")
    Term.(
      const run $ file_arg $ prop_arg $ goal_arg $ assume_arg $ induct_arg
      $ show_proof_arg)

(* ------------------------------------------------------------------ *)
(* explain *)

let explain_cmd =
  let run path atom_src certify =
    let p = or_die (load path) in
    (* Parse "pred(v1, v2, ...)" as a fact. *)
    let fact =
      match Ndlog.Parser.parse_program (atom_src ^ ".") with
      | Ok { Ndlog.Ast.facts = [ f ]; rules = []; _ } -> f
      | Ok _ | Error _ ->
        Fmt.epr "fvnc: expected a ground atom like path(@a,b,[a,b],1)@.";
        exit 1
    in
    let tuple = Array.of_list fact.Ndlog.Ast.fact_args in
    let o =
      match Ndlog.Eval.run p with
      | Ok o -> o
      | Error e ->
        Fmt.epr "fvnc: %a@." Ndlog.Analysis.pp_error e;
        exit 1
    in
    match
      Ndlog.Provenance.explain p o.Ndlog.Eval.db fact.Ndlog.Ast.fact_pred tuple
    with
    | Error e ->
      Fmt.epr "fvnc: %s@." e;
      exit 1
    | Ok d ->
      Fmt.pr "%a" Ndlog.Provenance.pp d;
      if certify then (
        match Logic.Certify.certify p d with
        | Ok cert ->
          Fmt.pr
            "@.certificate: kernel accepted a %d-step proof of %a from the \
             completion + base facts@."
            (Logic.Proof.size cert.Logic.Certify.cert_proof)
            Logic.Formula.pp cert.Logic.Certify.cert_goal
        | Error e ->
          Fmt.epr "fvnc: certification failed: %s@." e;
          exit 2)
  in
  let atom_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"ATOM" ~doc:"Ground atom, e.g. $(i,reachable(@a,c)).")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:"Compile the derivation into a kernel-checked proof.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the derivation tree (provenance) of a derived tuple; with \
          $(b,--certify), also produce a kernel-checked proof of the tuple.")
    Term.(const run $ file_arg $ atom_arg $ certify_arg)

(* ------------------------------------------------------------------ *)
(* strands *)

let strands_cmd =
  let run path =
    let p = or_die (load path) in
    (match Ndlog.Analysis.analyze p with
    | Error e ->
      Fmt.epr "fvnc: %a@." Ndlog.Analysis.pp_error e;
      exit 1
    | Ok _ -> ());
    let strands = Ndlog.Plan.compile_program p in
    List.iter (fun s -> Fmt.pr "%a@." Ndlog.Plan.pp s) strands
  in
  Cmd.v
    (Cmd.info "strands"
       ~doc:
         "Compile the program into Click-style dataflow strands (one per \
          rule and trigger predicate), as the P2 runtime would.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* softstate *)

let softstate_cmd =
  let run path =
    let p = or_die (load path) in
    let report = Ndlog.Softstate.to_hard_state p in
    Fmt.pr
      "%% soft predicates: %a; %d timestamp columns, %d liveness guards@."
      Fmt.(list ~sep:(any ", ") string)
      report.Ndlog.Softstate.soft_preds report.Ndlog.Softstate.added_columns
      report.Ndlog.Softstate.added_conditions;
    Fmt.pr "%a" Ndlog.Ast.pp_program report.Ndlog.Softstate.rewritten
  in
  Cmd.v
    (Cmd.info "softstate"
       ~doc:
         "Print the hard-state rewrite of a soft-state program (explicit \
          timestamps; Section 4.2 of the paper).")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)

let main =
  Cmd.group
    (Cmd.info "fvnc" ~version:"1.0.0"
       ~doc:"Formally Verifiable Networking: the FVN framework driver.")
    [
      check_cmd; run_cmd; dist_cmd; localize_cmd; spec_cmd; prove_cmd;
      explain_cmd; strands_cmd; softstate_cmd;
    ]

let () = exit (Cmd.eval main)
