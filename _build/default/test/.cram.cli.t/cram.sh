  $ fvnc check pv.ndlog
  $ fvnc run pv.ndlog -r bestPathCost
  $ fvnc dist pv.ndlog -r bestPathCost
  $ fvnc localize pv.ndlog | head -7
  $ fvnc spec pv.ndlog | grep -c 'def\|axiom'
  $ fvnc prove pv.ndlog -p route-optimality | sed 's/(.*)/<stats>/'
  $ fvnc prove pv.ndlog -g 'forall S D C. bestPathCost(S,D,C) => (exists P. path(S,D,P,C))' | sed 's/(.*)/<stats>/'
  $ fvnc prove pv.ndlog --induct path \
  >   --assume 'forall S D C. link(S,D,C) => 1 <= C' \
  >   -g 'forall S D P C. path(S,D,P,C) => 1 <= C'
  $ fvnc explain pv.ndlog 'path(@a,c,[a,b,c],3)' --certify
  $ fvnc prove pv.ndlog -g 'forall S D P C. path(S,D,P,C) => bestPath(S,D,P,C)' >/dev/null 2>&1
  $ echo 'p(@X,Y) :- q(@X).' | fvnc check -
  $ printf 'materialize(ping, 5).\nmaterialize(alive, 5).\na1 alive(@X,Y) :- ping(@X,Y).\nping(@a, b).\n' | fvnc softstate -
  $ fvnc strands pv.ndlog
