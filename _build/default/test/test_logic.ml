(* Tests for the logic library: terms, formulas, the arithmetic
   procedure, the proof checker (kernel), NDlog completion, the
   automated prover, and the tactic layer.

   The centerpiece reproduces Section 3.1 of the paper: the
   [bestPathStrong] route-optimality theorem for the path-vector
   program, proved automatically and as a short interactive script. *)

module T = Logic.Term
module F = Logic.Formula
module Arith = Logic.Arith
module Sequent = Logic.Sequent
module Proof = Logic.Proof
module Checker = Logic.Checker
module Theory = Logic.Theory
module Completion = Logic.Completion
module Prove = Logic.Prove
module Tactic = Logic.Tactic
module Fparser = Logic.Fparser
module V = Ndlog.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let x = T.Var "X"
let y = T.Var "Y"
let ca = T.Fn ("a", [])
let cb = T.Fn ("b", [])

(* ------------------------------------------------------------------ *)
(* Terms. *)

let test_term_unify () =
  (match T.unify T.subst_empty x ca with
  | Some s -> checkb "X := a" true (T.equal (T.apply_subst s x) ca)
  | None -> Alcotest.fail "unify failed");
  (match T.unify T.subst_empty (T.Fn ("f", [ x; cb ])) (T.Fn ("f", [ ca; y ])) with
  | Some s ->
    checkb "X := a" true (T.equal (T.apply_subst s x) ca);
    checkb "Y := b" true (T.equal (T.apply_subst s y) cb)
  | None -> Alcotest.fail "unify failed");
  checkb "occurs check" true (T.unify T.subst_empty x (T.Fn ("f", [ x ])) = None);
  checkb "clash" true (T.unify T.subst_empty ca cb = None)

let test_term_matching () =
  (match T.matching T.subst_empty (T.Fn ("f", [ x; x ])) (T.Fn ("f", [ ca; ca ])) with
  | Some _ -> ()
  | None -> Alcotest.fail "match failed");
  checkb "nonlinear mismatch" true
    (T.matching T.subst_empty (T.Fn ("f", [ x; x ])) (T.Fn ("f", [ ca; cb ])) = None);
  (* matching is one-way: variables in the target are opaque *)
  checkb "target var is opaque" true
    (T.matching T.subst_empty ca (T.Var "Z") = None)

let test_term_eval () =
  let t = T.Fn ("+", [ T.int 2; T.Fn ("*", [ T.int 3; T.int 4 ]) ]) in
  checkb "2+3*4" true (T.eval t = Some (V.Int 14));
  let p = T.Fn ("f_init", [ T.Cst (V.Addr "a"); T.Cst (V.Addr "b") ]) in
  checkb "builtin in terms" true (T.eval p = Some (V.List [ V.Addr "a"; V.Addr "b" ]));
  checkb "vars do not evaluate" true (T.eval (T.Fn ("+", [ x; T.int 1 ])) = None)

(* ------------------------------------------------------------------ *)
(* Formulas. *)

let test_formula_subst_capture () =
  (* (forall Y. X < Y)[X := Y] must rename the binder. *)
  let f = F.All ("Y", F.Lt (T.Var "X", T.Var "Y")) in
  let g = F.subst1 "X" (T.Var "Y") f in
  (match g with
  | F.All (y', F.Lt (T.Var v, T.Var w)) ->
    checkb "outer var substituted" true (v = "Y");
    checkb "binder renamed" true (y' <> "Y" && w = y')
  | _ -> Alcotest.fail "unexpected shape");
  ()

let test_formula_ground_decide () =
  checkb "3 < 4" true (F.ground_decide (F.lt (T.int 3) (T.int 4)) = Some true);
  checkb "4 < 3" true (F.ground_decide (F.lt (T.int 4) (T.int 3)) = Some false);
  checkb "f_inPath ground" true
    (F.ground_decide
       (F.eq
          (T.Fn ("f_inPath", [ T.Cst (V.List [ V.Addr "a" ]); T.Cst (V.Addr "a") ]))
          (T.Cst (V.Bool true)))
    = Some true);
  checkb "atoms undecided" true (F.ground_decide (F.atom "p" [ T.int 1 ]) = None)

let test_formula_fv () =
  let f = F.All ("X", F.Imp (F.atom "p" [ x; y ], F.atom "q" [ x ])) in
  checkb "Y free" true (T.Sset.mem "Y" (F.fv f));
  checkb "X bound" false (T.Sset.mem "X" (F.fv f))

(* ------------------------------------------------------------------ *)
(* Arithmetic. *)

let test_arith_basic () =
  let c = T.Fn ("C", []) and c2 = T.Fn ("C2", []) in
  checkb "C<=C2 & C2<C unsat" true (Arith.unsat [ F.le c c2; F.lt c2 c ]);
  checkb "C<=C2 sat" false (Arith.unsat [ F.le c c2 ]);
  checkb "transitivity" true
    (Arith.entails [ F.lt x y; F.lt y (T.Var "Z") ] (F.lt x (T.Var "Z")));
  checkb "le refl" true (Arith.entails [] (F.le x x));
  checkb "non-theorem" false (Arith.entails [] (F.lt x y))

let test_arith_linear_combinations () =
  (* x + y <= 5, x >= 3, y >= 3 is unsat. *)
  checkb "sum too large" true
    (Arith.unsat
       [
         F.le (T.( +: ) x y) (T.int 5);
         F.le (T.int 3) x;
         F.le (T.int 3) y;
       ]);
  (* strict integer strengthening: a < b < a + 2 forces b = a + 1 (sat) *)
  checkb "strict band sat" false
    (Arith.unsat [ F.lt x y; F.lt y (T.( +: ) x (T.int 2)) ]);
  (* a < b < a + 1 is unsat over the integers *)
  checkb "empty integer band" true
    (Arith.unsat [ F.lt x y; F.lt y (T.( +: ) x (T.int 1)) ])

let test_arith_equalities () =
  checkb "eq chain" true
    (Arith.entails [ F.eq x y; F.eq y (T.Var "Z") ] (F.eq x (T.Var "Z")));
  checkb "eq plus offset" true
    (Arith.entails
       [ F.eq x (T.( +: ) y (T.int 1)) ]
       (F.lt y x))

(* ------------------------------------------------------------------ *)
(* Checker. *)

let thy0 = Theory.empty

let test_checker_accepts () =
  (* p |- p *)
  let s = Sequent.make ~hyps:[ F.atom "p" [] ] (F.atom "p" []) in
  checkb "assumption" true (Checker.is_valid thy0 s Proof.Assumption);
  (* |- p => p *)
  let s = Sequent.make (F.imp (F.atom "p" []) (F.atom "p" [])) in
  checkb "impR" true (Checker.is_valid thy0 s (Proof.ImpR Proof.Assumption));
  (* |- forall X. X <= X *)
  let s = Sequent.make (F.all "X" (F.le x x)) in
  checkb "allR + arith" true (Checker.is_valid thy0 s (Proof.AllR ("c", Proof.Arith)))

let test_checker_rejects () =
  let s = Sequent.make (F.atom "p" []) in
  checkb "bogus assumption" false (Checker.is_valid thy0 s Proof.Assumption);
  (* eigenvariable freshness: reusing a constant of the sequent *)
  let s =
    Sequent.make ~hyps:[ F.atom "q" [ T.Fn ("c", []) ] ]
      (F.all "X" (F.atom "p" [ x ]))
  in
  checkb "non-fresh eigenvariable" false
    (Checker.is_valid thy0 s (Proof.AllR ("c", Proof.Assumption)));
  (* arith cannot prove a non-theorem *)
  let s = Sequent.make (F.lt x y) in
  checkb "arith non-theorem" false (Checker.is_valid thy0 s Proof.Arith);
  (* wrong rule for the connective *)
  let s = Sequent.make (F.imp (F.atom "p" []) (F.atom "p" [])) in
  checkb "andR on imp" false
    (Checker.is_valid thy0 s (Proof.AndR (Proof.Assumption, Proof.Assumption)))

let test_checker_axiom_rule () =
  let thy = Theory.add "ax" (F.atom "p" []) Theory.empty in
  let s = Sequent.make (F.atom "p" []) in
  checkb "axiom then assumption" true
    (Checker.is_valid thy s (Proof.AxiomR ("ax", Proof.Assumption)));
  checkb "unknown axiom" false
    (Checker.is_valid thy s (Proof.AxiomR ("nope", Proof.Assumption)))

(* ------------------------------------------------------------------ *)
(* Completion. *)

let path_vector_theory () =
  Completion.theory_of_program (Ndlog.Programs.path_vector ())

let test_completion_names () =
  let thy = path_vector_theory () in
  let has n = Theory.find n thy <> None in
  checkb "path_def" true (has "path_def");
  checkb "bestPath_def" true (has "bestPath_def");
  checkb "bestPathCost_lb" true (has "bestPathCost_lb");
  checkb "bestPathCost_mem" true (has "bestPathCost_mem");
  checkb "bestPathCost_fun" true (has "bestPathCost_fun");
  checkb "definition lookup" true (Theory.definition_of "path" thy <> None);
  checkb "aggregates are not definitions" true
    (Theory.definition_of "bestPathCost" thy = None)

let test_completion_closed () =
  let thy = path_vector_theory () in
  List.iter
    (fun name ->
      let e = Theory.find_exn name thy in
      checkb (name ^ " closed") true (F.is_closed e.Theory.formula))
    (Theory.names thy)

let test_completion_horn_clauses () =
  let thy = path_vector_theory () in
  let clauses = Theory.horn_clauses thy in
  checkb "lb is a clause" true
    (List.exists (fun c -> c.Theory.clause_name = "bestPathCost_lb") clauses);
  let lb =
    List.find (fun c -> c.Theory.clause_name = "bestPathCost_lb") clauses
  in
  checki "lb has 2 antecedents" 2 (List.length lb.Theory.antecedents);
  (match lb.Theory.consequent with
  | F.Le _ -> ()
  | _ -> Alcotest.fail "lb consequent should be <=");
  ()

(* ------------------------------------------------------------------ *)
(* Automated prover. *)

let test_prove_tautologies () =
  let ok goal =
    match Prove.prove thy0 goal with
    | Ok o -> checkb "kernel-checked" true o.Prove.checked
    | Error e -> Alcotest.fail e
  in
  ok (F.imp (F.atom "p" []) (F.atom "p" []));
  ok (F.all "X" (F.imp (F.atom "p" [ x ]) (F.atom "p" [ x ])));
  ok (F.imp (F.conj [ F.atom "p" []; F.atom "q" [] ]) (F.atom "q" []));
  ok (F.imp (F.atom "p" []) (F.disj [ F.atom "q" []; F.atom "p" [] ]));
  ok
    (F.imp
       (F.disj [ F.atom "p" []; F.atom "q" [] ])
       (F.disj [ F.atom "q" []; F.atom "p" [] ]));
  ok (F.all "X" (F.all "Y" (F.imp (F.lt x y) (F.le x y))));
  ok (F.neg (F.conj [ F.atom "p" []; F.neg (F.atom "p" []) ]));
  ok (F.imp (F.ex "X" (F.atom "p" [ x ])) (F.ex "Y" (F.atom "p" [ y ])))

let test_prove_non_theorems () =
  let bad goal =
    match Prove.prove ~max_fuel:3 thy0 goal with
    | Ok _ -> Alcotest.failf "proved a non-theorem: %s" (F.to_string goal)
    | Error _ -> ()
  in
  bad (F.atom "p" []);
  bad (F.imp (F.atom "p" []) (F.atom "q" []));
  bad (F.all "X" (F.all "Y" (F.lt x y)))

let test_prove_forward_chaining () =
  (* edge facts + transitivity as axioms; prove a concrete reachability *)
  let edge a b = F.atom "edge" [ T.Fn (a, []); T.Fn (b, []) ] in
  let conn a b = F.atom "conn" [ T.Fn (a, []); T.Fn (b, []) ] in
  let thy =
    Theory.empty
    |> Theory.add "e1" (edge "a" "b")
    |> Theory.add "e2" (edge "b" "c")
    |> Theory.add "base"
         (F.all_list [ "X"; "Y" ]
            (F.imp (F.atom "edge" [ x; y ]) (F.atom "conn" [ x; y ])))
    |> Theory.add "trans"
         (F.all_list [ "X"; "Y"; "Z" ]
            (F.imp
               (F.conj
                  [ F.atom "conn" [ x; y ]; F.atom "conn" [ y; T.Var "Z" ] ])
               (F.atom "conn" [ x; T.Var "Z" ])))
  in
  (* facts are axioms with no antecedents: forward chaining needs them as
     hypotheses, so state the theorem with the facts as antecedents *)
  let goal =
    F.imp (F.conj [ edge "a" "b"; edge "b" "c" ]) (conn "a" "c")
  in
  match Prove.prove thy goal with
  | Ok o ->
    checkb "checked" true o.Prove.checked;
    checkb "positive steps" true (o.Prove.steps > 0)
  | Error e -> Alcotest.fail e

(* The paper's route-optimality theorem (Section 3.1):
     bestPath(S,D,P,C) => NOT (EXISTS C2 P2: path(S,D,P2,C2) AND C2 < C)
*)
let best_path_strong =
  let s = T.Var "S" and d = T.Var "D" and p = T.Var "P" and c = T.Var "C" in
  let p2 = T.Var "P2" and c2 = T.Var "C2" in
  F.all_list
    [ "S"; "D"; "P"; "C" ]
    (F.imp
       (F.atom "bestPath" [ s; d; p; c ])
       (F.neg
          (F.ex_list [ "P2"; "C2" ]
             (F.conj [ F.atom "path" [ s; d; p2; c2 ]; F.lt c2 c ]))))

let test_best_path_strong_auto () =
  let thy = path_vector_theory () in
  match Prove.prove thy best_path_strong with
  | Ok o ->
    checkb "kernel accepted" true o.Prove.checked;
    checkb "nontrivial proof" true (o.Prove.steps > 5)
  | Error e -> Alcotest.fail e

let test_best_path_strong_script () =
  let thy = path_vector_theory () in
  let k n = T.Fn (n, []) in
  let script =
    [
      ("skosimp*", Tactic.skosimp);
      ("expand bestPath", Tactic.expand "bestPath");
      ("flatten", Tactic.skosimp);
      ( "use bestPathCost_lb",
        Tactic.use "bestPathCost_lb" [ k "S"; k "D"; k "C"; k "P2"; k "C2" ] );
      ("modus", Tactic.grind ~max_fuel:2 );
    ]
  in
  (* The last step lets the automated closer discharge the instantiated
     implication plus arithmetic; everything before mirrors the PVS
     script from the paper. *)
  match Tactic.run thy best_path_strong script with
  | Ok r ->
    checkb "checked" true r.Tactic.checked;
    checki "script steps" 5 r.Tactic.script_steps
  | Error e -> Alcotest.fail e

(* A second program-level theorem: best costs are achieved by some path.
     bestPathCost(S,D,C) => EXISTS P. path(S,D,P,C) *)
let test_best_cost_membership () =
  let thy = path_vector_theory () in
  let s = T.Var "S" and d = T.Var "D" and c = T.Var "C" in
  let goal =
    F.all_list [ "S"; "D"; "C" ]
      (F.imp
         (F.atom "bestPathCost" [ s; d; c ])
         (F.ex "P" (F.atom "path" [ s; d; T.Var "P"; c ])))
  in
  match Prove.prove thy goal with
  | Ok o -> checkb "checked" true o.Prove.checked
  | Error e -> Alcotest.fail e

(* Unfolding a definition in the goal: one-hop links yield paths. *)
let test_path_from_link () =
  let thy = path_vector_theory () in
  let s = T.Var "S" and d = T.Var "D" and c = T.Var "C" in
  let goal =
    F.all_list [ "S"; "D"; "C" ]
      (F.imp
         (F.atom "link" [ s; d; c ])
         (F.atom "path" [ s; d; T.Fn ("f_init", [ s; d ]); c ]))
  in
  match Prove.prove thy goal with
  | Ok o -> checkb "checked" true o.Prove.checked
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Fixpoint induction. *)

(* If every link has cost >= 1 then every path has cost >= 1: requires
   induction over the recursive [path] definition. *)
let links_positive =
  F.all_list [ "S"; "D"; "C" ]
    (F.imp
       (F.atom "link" [ T.Var "S"; T.Var "D"; T.Var "C" ])
       (F.le (T.int 1) (T.Var "C")))

let path_cost_positive =
  F.all_list [ "S"; "D"; "P"; "C" ]
    (F.imp
       (F.atom "path" [ T.Var "S"; T.Var "D"; T.Var "P"; T.Var "C" ])
       (F.le (T.int 1) (T.Var "C")))

let test_induction_path_cost () =
  let thy = path_vector_theory () in
  match
    Prove.prove_by_induction thy ~hyps:[ links_positive ] ~on:"path"
      path_cost_positive
  with
  | Ok o ->
    checkb "kernel accepted induction" true o.Prove.checked;
    checkb "uses the Induct rule" true
      (match o.Prove.proof with Logic.Proof.Induct ("path", _) -> true | _ -> false)
  | Error e -> Alcotest.fail e

(* Every reachable source has an outgoing link. *)
let test_induction_reachable_has_link () =
  let thy =
    Completion.theory_of_program (Ndlog.Programs.reachability ())
  in
  let goal =
    F.all_list [ "S"; "D" ]
      (F.imp
         (F.atom "reachable" [ T.Var "S"; T.Var "D" ])
         (F.ex_list [ "Z"; "C" ]
            (F.atom "link" [ T.Var "S"; T.Var "Z"; T.Var "C" ])))
  in
  match Prove.prove_by_induction thy ~on:"reachable" goal with
  | Ok o -> checkb "checked" true o.Prove.checked
  | Error e -> Alcotest.fail e

(* Induction must reject non-theorems: path costs are not all >= 2
   (one-hop paths of cost 1 are a counterexample under the hypotheses). *)
let test_induction_rejects_false () =
  let thy = path_vector_theory () in
  let too_strong =
    F.all_list [ "S"; "D"; "P"; "C" ]
      (F.imp
         (F.atom "path" [ T.Var "S"; T.Var "D"; T.Var "P"; T.Var "C" ])
         (F.le (T.int 2) (T.Var "C")))
  in
  match
    Prove.prove_by_induction ~max_fuel:3 thy ~hyps:[ links_positive ]
      ~on:"path" too_strong
  with
  | Ok _ -> Alcotest.fail "proved a false property by induction"
  | Error _ -> ()

(* The kernel rejects malformed induction applications. *)
let test_induction_kernel_guards () =
  let thy = path_vector_theory () in
  (* wrong predicate *)
  let s = Sequent.make path_cost_positive in
  checkb "unknown predicate rejected" false
    (Checker.is_valid thy s (Logic.Proof.Induct ("nonsense", [])));
  (* wrong number of subproofs: path has two rules *)
  checkb "missing subproofs rejected" false
    (Checker.is_valid thy s (Logic.Proof.Induct ("path", [ Logic.Proof.Arith ])));
  (* wrong goal shape *)
  let bad_goal = F.atom "path" [ T.int 1; T.int 2; T.int 3; T.int 4 ] in
  checkb "wrong goal shape rejected" false
    (Checker.is_valid thy (Sequent.make bad_goal)
       (Logic.Proof.Induct ("path", [ Logic.Proof.Arith; Logic.Proof.Arith ])))

(* Scripted induction via the tactic layer: [induct] must be the first
   step (skosimp would strip the canonical [forall xs. pred => Phi]
   shape), then one grind per defining rule. *)
let test_induction_tactic () =
  let thy = Completion.theory_of_program (Ndlog.Programs.reachability ()) in
  let goal =
    F.all_list [ "S"; "D" ]
      (F.imp
         (F.atom "reachable" [ T.Var "S"; T.Var "D" ])
         (F.ex_list [ "Z"; "C" ]
            (F.atom "link" [ T.Var "S"; T.Var "Z"; T.Var "C" ])))
  in
  let script =
    [
      ("induct reachable", Tactic.induct "reachable");
      ("grind rc1", Tactic.grind ~max_fuel:3);
      ("grind rc2", Tactic.grind ~max_fuel:3);
    ]
  in
  match Tactic.run thy goal script with
  | Ok r -> checkb "checked" true r.Tactic.checked
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Tactics. *)

let test_tactic_failures () =
  let thy = path_vector_theory () in
  (* splitting a non-conjunction fails cleanly *)
  (match Tactic.run thy (F.atom "p" []) [ ("split", Tactic.split) ] with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ());
  (* a script that leaves open goals fails at qed *)
  match Tactic.run thy best_path_strong [ ("skosimp", Tactic.skosimp) ] with
  | Ok _ -> Alcotest.fail "expected open-goal failure"
  | Error _ -> ()

let test_tactic_case_hyp () =
  (* (p \/ q) => (q \/ p) by case split. *)
  let a = F.atom "p" [] and b = F.atom "q" [] in
  let goal = F.imp (F.Or (a, b)) (F.Or (b, a)) in
  let script =
    [
      ("flatten", Tactic.skosimp);
      ("case", Tactic.case_hyp (F.Or (a, b)));
      ("grind-left", Tactic.grind ~max_fuel:1);
      ("grind-right", Tactic.grind ~max_fuel:1);
    ]
  in
  match Tactic.run Theory.empty goal script with
  | Ok r -> checkb "checked" true r.Tactic.checked
  | Error e -> Alcotest.fail e

let test_tactic_inst () =
  (* exists X. X = 3, by explicit witness. *)
  let goal = F.ex "X" (F.eq x (T.int 3)) in
  match
    Tactic.run Theory.empty goal
      [ ("inst 3", Tactic.inst (T.int 3)); ("eval", Tactic.eval_tac) ]
  with
  | Ok r -> checkb "checked" true r.Tactic.checked
  | Error e -> Alcotest.fail e

let test_tactic_modus () =
  (* From hyps p and p => q, conclude q via modus. *)
  let a = F.atom "p" [] and b = F.atom "q" [] in
  let goal = F.imp a (F.imp (F.imp a b) b) in
  let script =
    [
      ("flatten", Tactic.skosimp);
      ("modus", Tactic.modus (F.Imp (a, b)));
      ("assumption", Tactic.assumption);
    ]
  in
  match Tactic.run Theory.empty goal script with
  | Ok r -> checkb "checked" true r.Tactic.checked
  | Error e -> Alcotest.fail e

let test_tactic_expand_goal () =
  (* Prove a path atom by unfolding the definition in the goal and
     picking the one-hop disjunct. *)
  let thy = path_vector_theory () in
  let goal =
    Fparser.parse_exn
      "forall S D C. link(S,D,C) => path(S,D,f_init(S,D),C)"
  in
  let script =
    [
      ("flatten", Tactic.skosimp);
      ("expand path", Tactic.expand "path");
      ("grind", Tactic.grind ~max_fuel:2);
    ]
  in
  match Tactic.run thy goal script with
  | Ok r -> checkb "checked" true r.Tactic.checked
  | Error e -> Alcotest.fail e

let test_tactic_split () =
  let a = F.atom "p" [] in
  let goal = F.imp a (F.And (a, a)) in
  let script =
    [
      ("flatten", Tactic.skosimp);
      ("split", Tactic.split);
      ("l", Tactic.assumption);
      ("r", Tactic.assumption);
    ]
  in
  match Tactic.run Theory.empty goal script with
  | Ok r -> checkb "checked" true r.Tactic.checked
  | Error e -> Alcotest.fail e

let test_tactic_arith_close () =
  let goal = F.all_list [ "X"; "Y" ] (F.imp (F.lt x y) (F.le x y)) in
  match
    Tactic.run Theory.empty goal
      [ ("skosimp", Tactic.skosimp); ("arith", Tactic.arith) ]
  with
  | Ok r -> checkb "checked" true r.Tactic.checked
  | Error e -> Alcotest.fail e

(* Proof sizes are meaningful: scripted and automatic proofs of the same
   theorem have comparable magnitude. *)
let test_proof_metrics () =
  let thy = path_vector_theory () in
  match Prove.prove thy best_path_strong with
  | Error e -> Alcotest.fail e
  | Ok o ->
    checkb "size >= depth" true (Proof.size o.Prove.proof >= Proof.depth o.Prove.proof);
    checkb "elapsed fraction of a second" true (o.Prove.elapsed < 1.0)

(* Flooding integrity: LSAs at any node describe true links — proved by
   induction over the flooding rules (base: own links; step: copies
   preserve the payload). *)
let test_induction_lsa_integrity () =
  let thy =
    Completion.theory_of_program (Ndlog.Programs.link_state ~max_hops:8)
  in
  let goal =
    Fparser.parse_exn "forall N S D C. lsa(N,S,D,C) => link(S,D,C)"
  in
  match Prove.prove_by_induction thy ~on:"lsa" goal with
  | Ok o -> checkb "checked" true o.Prove.checked
  | Error e -> Alcotest.fail e

let test_lemma_reuse () =
  (* Prove the membership lemma once; a later proof uses it by forward
     chaining without re-deriving it. *)
  let thy = path_vector_theory () in
  let membership =
    Fparser.parse_exn
      "forall S D C. bestPathCost(S,D,C) => (exists P. path(S,D,P,C))"
  in
  match Prove.assert_lemma thy "bestCost_member" membership with
  | Error e -> Alcotest.fail e
  | Ok (thy', _) -> (
    checkb "lemma recorded" true (Theory.find "bestCost_member" thy' <> None);
    (* A goal whose proof needs exactly that step. *)
    let goal =
      Fparser.parse_exn
        "forall S D C. bestPathCost(S,D,C) => (exists P2. path(S,D,P2,C))"
    in
    match Prove.prove thy' goal with
    | Ok o -> checkb "checked" true o.Prove.checked
    | Error e -> Alcotest.fail e)

let test_lemma_by_induction () =
  let rthy = Completion.theory_of_program (Ndlog.Programs.reachability ()) in
  let lemma =
    Fparser.parse_exn
      "forall S D. reachable(S,D) => (exists Z C. link(S,Z,C))"
  in
  match
    Prove.assert_lemma ~by_induction_on:"reachable" rthy "reach_has_link" lemma
  with
  | Error e -> Alcotest.fail e
  | Ok (thy', o) ->
    checkb "checked" true o.Prove.checked;
    checkb "is a lemma" true
      (match Theory.find "reach_has_link" thy' with
      | Some e -> e.Theory.kind = Theory.Lemma
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Formula parser. *)

let test_fparser_round_trips () =
  (* Parsing the printed form of programmatic formulas yields equal
     formulas (on a representative set). *)
  let cases =
    [
      best_path_strong;
      links_positive;
      path_cost_positive;
      F.iff (F.atom "p" []) (F.disj [ F.atom "q" []; F.neg (F.atom "r" []) ]);
      F.all "X" (F.imp (F.le (T.int 0) x) (F.ex "Y" (F.lt x y)));
    ]
  in
  List.iter
    (fun f ->
      let printed = F.to_string f in
      match Fparser.parse printed with
      | Ok f' ->
        checkb (Printf.sprintf "round trip %s" printed) true (F.equal f f')
      | Error e -> Alcotest.failf "parse of %S failed: %s" printed e)
    cases

let test_fparser_concrete () =
  let f =
    Fparser.parse_exn
      "forall S D P C. bestPath(S,D,P,C) => ~(exists P2 C2. path(S,D,P2,C2) \
       /\\ C2 < C)"
  in
  checkb "equals programmatic bestPathStrong" true (F.equal f best_path_strong)

let test_fparser_precedence () =
  (* a /\ b \/ c parses as (a /\ b) \/ c; => is right associative and
     binds loosest (above <=>). *)
  let a = F.atom "a" [] and b = F.atom "b" [] and c = F.atom "c" [] in
  checkb "and binds tighter than or" true
    (F.equal
       (Fparser.parse_exn "a /\\ b \\/ c")
       (F.Or (F.And (a, b), c)));
  checkb "imp right assoc" true
    (F.equal (Fparser.parse_exn "a => b => c") (F.Imp (a, F.Imp (b, c))));
  checkb "gt normalizes to lt" true
    (F.equal (Fparser.parse_exn "X > 3") (F.Lt (T.int 3, x)))

let test_fparser_identifiers () =
  (* bound names are variables regardless of case; free capitalized names
     are variables; free lowercase names are constants *)
  (match Fparser.parse_exn "forall x. p(x, Y, c)" with
  | F.All ("x", F.Atom ("p", [ T.Var "x"; T.Var "Y"; T.Fn ("c", []) ])) -> ()
  | f -> Alcotest.failf "unexpected parse: %s" (F.to_string f));
  (* arithmetic terms and function application *)
  match Fparser.parse_exn "f_size(P) <= 2 + 3 * N" with
  | F.Le (T.Fn ("f_size", [ T.Var "P" ]), T.Fn ("+", [ _; T.Fn ("*", _) ])) ->
    ()
  | f -> Alcotest.failf "unexpected parse: %s" (F.to_string f)

let test_fparser_errors () =
  let bad src =
    match Fparser.parse src with
    | Ok _ -> Alcotest.failf "expected parse error for %S" src
    | Error _ -> ()
  in
  bad "forall . p";
  bad "p(X";
  bad "X <";
  bad "p(X) /\\";
  bad ""

let test_fparser_parsed_goal_proves () =
  (* End to end: a parsed goal goes through the prover. *)
  let thy = path_vector_theory () in
  let goal =
    Fparser.parse_exn
      "forall S D C. bestPathCost(S,D,C) => (exists P. path(S,D,P,C))"
  in
  match Prove.prove thy goal with
  | Ok o -> checkb "checked" true o.Prove.checked
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Certified provenance (Certify). *)

module Certify = Logic.Certify

let test_certify_path_tuple () =
  let p =
    Ndlog.Programs.with_links
      (Ndlog.Programs.path_vector ())
      (Ndlog.Programs.line_links 4)
  in
  let tuple =
    Array.of_list
      [
        V.Addr "n0"; V.Addr "n3";
        V.List [ V.Addr "n0"; V.Addr "n1"; V.Addr "n2"; V.Addr "n3" ];
        V.Int 3;
      ]
  in
  match Certify.certify_tuple p "path" tuple with
  | Ok cert ->
    checkb "kernel checked" true cert.Certify.cert_checked;
    checkb "nontrivial proof" true (Proof.size cert.Certify.cert_proof > 10)
  | Error e -> Alcotest.fail e

let test_certify_reachability () =
  let p =
    Ndlog.Programs.with_links
      (Ndlog.Programs.reachability ())
      (Ndlog.Programs.ring_links 4)
  in
  let tuple = Array.of_list [ V.Addr "n0"; V.Addr "n2" ] in
  match Certify.certify_tuple p "reachable" tuple with
  | Ok cert -> checkb "checked" true cert.Certify.cert_checked
  | Error e -> Alcotest.fail e

let test_certify_rejects_absent () =
  let p =
    Ndlog.Programs.with_links
      (Ndlog.Programs.reachability ())
      (Ndlog.Programs.line_links 3)
  in
  let tuple = Array.of_list [ V.Addr "n0"; V.Addr "n99" ] in
  match Certify.certify_tuple p "reachable" tuple with
  | Ok _ -> Alcotest.fail "certified an absent tuple"
  | Error _ -> ()

let test_certify_every_reachable_tuple () =
  let p =
    Ndlog.Programs.with_links
      (Ndlog.Programs.reachability ())
      (Ndlog.Programs.random_links ~seed:11 ~extra:2 5)
  in
  let o = Ndlog.Eval.run_exn p in
  Ndlog.Store.tuples "reachable" o.Ndlog.Eval.db
  |> List.iter (fun t ->
         match Certify.certify_tuple p "reachable" t with
         | Ok cert -> checkb "checked" true cert.Certify.cert_checked
         | Error e -> Alcotest.fail e)

(* ------------------------------------------------------------------ *)
(* Properties. *)

let gen_small_term =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n = 0 then
          oneof
            [ map (fun i -> T.int i) (int_range 0 5); return ca; return cb ]
        else
          frequency
            [
              (2, map (fun i -> T.int i) (int_range 0 5));
              (1, map2 (fun a b -> T.( +: ) a b) (self (n / 2)) (self (n / 2)));
            ]))

let arb_term = QCheck.make ~print:T.to_string gen_small_term

let prop_unify_produces_unifier =
  QCheck.Test.make ~name:"unify really unifies" ~count:100
    (QCheck.pair arb_term arb_term)
    (fun (a, b) ->
      match T.unify T.subst_empty a b with
      | None -> true
      | Some s -> T.equal (T.apply_subst s a) (T.apply_subst s b))

let prop_arith_eval_consistent =
  QCheck.Test.make ~name:"arith agrees with evaluation on ground facts"
    ~count:100
    QCheck.(pair (int_range (-20) 20) (int_range (-20) 20))
    (fun (a, b) ->
      let fa = F.lt (T.int a) (T.int b) in
      if a < b then Arith.entails [] fa else not (Arith.entails [] fa))

let prop_checker_rejects_mutations =
  (* Take the bestPathStrong proof and perturb the theorem; the original
     proof must not check against a different goal. *)
  QCheck.Test.make ~name:"checker rejects proof of mutated goal" ~count:20
    (QCheck.int_range 1 1000)
    (fun n ->
      let thy = path_vector_theory () in
      match Prove.prove thy best_path_strong with
      | Error _ -> false
      | Ok o ->
        let mutated =
          F.all_list [ "S"; "D"; "P"; "C" ]
            (F.imp
               (F.atom "bestPath"
                  [ T.Var "S"; T.Var "D"; T.Var "P"; T.Var "C" ])
               (F.lt (T.Var "C") (T.int n)))
        in
        not (Checker.is_valid thy (Sequent.make mutated) o.Prove.proof))

(* Arith soundness vs brute force: whenever Fourier-Motzkin claims a
   literal set unsatisfiable, no small integer assignment satisfies it. *)
let gen_literal =
  QCheck.Gen.(
    let var = oneofl [ T.Var "X"; T.Var "Y"; T.Var "Z" ] in
    let term =
      oneof
        [
          var;
          map T.int (int_range (-4) 4);
          map2 (fun v c -> T.( +: ) v (T.int c)) var (int_range (-3) 3);
        ]
    in
    let lit =
      oneof
        [
          map2 F.le term term;
          map2 F.lt term term;
          map2 F.eq term term;
        ]
    in
    list_size (int_range 1 4) lit)

let arb_literals =
  QCheck.make
    ~print:(fun ls -> String.concat " & " (List.map F.to_string ls))
    gen_literal

let prop_arith_unsat_sound =
  QCheck.Test.make ~name:"FM unsat implies no small integer model" ~count:300
    arb_literals
    (fun lits ->
      if not (Arith.unsat lits) then true
      else
        (* brute force X, Y, Z in [-8, 8] *)
        let range = List.init 17 (fun i -> i - 8) in
        not
          (List.exists
             (fun vx ->
               List.exists
                 (fun vy ->
                   List.exists
                     (fun vz ->
                       let sub =
                         T.subst_of_list
                           [ ("X", T.int vx); ("Y", T.int vy); ("Z", T.int vz) ]
                       in
                       List.for_all
                         (fun l ->
                           F.ground_decide (F.apply_subst sub l) = Some true)
                         lits)
                     range)
                 range)
             range))

let prop_arith_entails_sound =
  QCheck.Test.make ~name:"entails implies truth on small models" ~count:200
    (QCheck.pair arb_literals arb_literals)
    (fun (hyps, goals) ->
      match goals with
      | [] -> true
      | goal :: _ ->
        if not (Arith.entails hyps goal) then true
        else
          let range = List.init 13 (fun i -> i - 6) in
          List.for_all
            (fun vx ->
              List.for_all
                (fun vy ->
                  List.for_all
                    (fun vz ->
                      let sub =
                        T.subst_of_list
                          [ ("X", T.int vx); ("Y", T.int vy); ("Z", T.int vz) ]
                      in
                      let holds l =
                        F.ground_decide (F.apply_subst sub l) = Some true
                      in
                      (not (List.for_all holds hyps)) || holds goal)
                    range)
                range)
            range)

(* Formula pretty-printing round-trips through the parser (on a fragment
   avoiding addresses and boolean constants, which print in NDlog
   syntax). *)
let gen_formula =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let atom =
          oneof
            [
              map2 (fun a b -> F.atom "p" [ a; b ])
                (oneofl [ T.Var "X"; T.Var "Y"; T.int 1 ])
                (oneofl [ T.Var "X"; T.int 2 ]);
              map2 F.lt
                (oneofl [ T.Var "X"; T.int 0 ])
                (oneofl [ T.Var "Y"; T.int 3 ]);
              map2 F.eq
                (oneofl [ T.Var "X"; T.Var "Y" ])
                (oneofl [ T.Var "Y"; T.int 5 ]);
            ]
        in
        if n = 0 then atom
        else
          frequency
            [
              (2, atom);
              (1, map2 (fun a b -> F.And (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map2 (fun a b -> F.Or (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map2 (fun a b -> F.Imp (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map (fun a -> F.Not a) (self (n - 1)));
              (1, map (fun a -> F.All ("X", a)) (self (n - 1)));
              (1, map (fun a -> F.Ex ("Y", a)) (self (n - 1)));
            ]))

let prop_fparser_round_trip =
  QCheck.Test.make ~name:"pp then parse is identity" ~count:200
    (QCheck.make ~print:F.to_string gen_formula)
    (fun f ->
      match Fparser.parse (F.to_string f) with
      | Ok f' -> F.equal f f'
      | Error _ -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "logic"
    [
      ( "term",
        [
          Alcotest.test_case "unification" `Quick test_term_unify;
          Alcotest.test_case "matching" `Quick test_term_matching;
          Alcotest.test_case "evaluation" `Quick test_term_eval;
        ] );
      ( "formula",
        [
          Alcotest.test_case "capture-avoiding subst" `Quick
            test_formula_subst_capture;
          Alcotest.test_case "ground decide" `Quick test_formula_ground_decide;
          Alcotest.test_case "free variables" `Quick test_formula_fv;
        ] );
      ( "arith",
        [
          Alcotest.test_case "basics" `Quick test_arith_basic;
          Alcotest.test_case "linear combinations" `Quick
            test_arith_linear_combinations;
          Alcotest.test_case "equalities" `Quick test_arith_equalities;
        ] );
      ( "checker",
        [
          Alcotest.test_case "accepts valid proofs" `Quick test_checker_accepts;
          Alcotest.test_case "rejects invalid proofs" `Quick
            test_checker_rejects;
          Alcotest.test_case "axiom rule" `Quick test_checker_axiom_rule;
        ] );
      ( "completion",
        [
          Alcotest.test_case "expected axioms" `Quick test_completion_names;
          Alcotest.test_case "axioms are closed" `Quick test_completion_closed;
          Alcotest.test_case "horn clauses" `Quick test_completion_horn_clauses;
        ] );
      ( "prove",
        [
          Alcotest.test_case "tautologies" `Quick test_prove_tautologies;
          Alcotest.test_case "non-theorems rejected" `Quick
            test_prove_non_theorems;
          Alcotest.test_case "forward chaining" `Quick
            test_prove_forward_chaining;
          Alcotest.test_case "bestPathStrong (auto)" `Quick
            test_best_path_strong_auto;
          Alcotest.test_case "bestPathStrong (script)" `Quick
            test_best_path_strong_script;
          Alcotest.test_case "best cost membership" `Quick
            test_best_cost_membership;
          Alcotest.test_case "path from link" `Quick test_path_from_link;
          Alcotest.test_case "proof metrics" `Quick test_proof_metrics;
        ] );
      ( "induction",
        [
          Alcotest.test_case "path cost positive" `Quick
            test_induction_path_cost;
          Alcotest.test_case "reachable has link" `Quick
            test_induction_reachable_has_link;
          Alcotest.test_case "rejects false property" `Quick
            test_induction_rejects_false;
          Alcotest.test_case "kernel guards" `Quick
            test_induction_kernel_guards;
          Alcotest.test_case "induct tactic" `Quick test_induction_tactic;
          Alcotest.test_case "lemma reuse" `Quick test_lemma_reuse;
          Alcotest.test_case "lemma by induction" `Quick
            test_lemma_by_induction;
          Alcotest.test_case "lsa integrity" `Quick
            test_induction_lsa_integrity;
        ] );
      ( "tactic",
        [
          Alcotest.test_case "failures are clean" `Quick test_tactic_failures;
          Alcotest.test_case "arith close" `Quick test_tactic_arith_close;
          Alcotest.test_case "case split" `Quick test_tactic_case_hyp;
          Alcotest.test_case "inst witness" `Quick test_tactic_inst;
          Alcotest.test_case "modus" `Quick test_tactic_modus;
          Alcotest.test_case "expand goal" `Quick test_tactic_expand_goal;
          Alcotest.test_case "split" `Quick test_tactic_split;
        ] );
      ( "fparser",
        [
          Alcotest.test_case "round trips" `Quick test_fparser_round_trips;
          Alcotest.test_case "concrete syntax" `Quick test_fparser_concrete;
          Alcotest.test_case "precedence" `Quick test_fparser_precedence;
          Alcotest.test_case "identifiers" `Quick test_fparser_identifiers;
          Alcotest.test_case "errors" `Quick test_fparser_errors;
          Alcotest.test_case "parsed goal proves" `Quick
            test_fparser_parsed_goal_proves;
        ] );
      ( "certify",
        [
          Alcotest.test_case "path tuple" `Quick test_certify_path_tuple;
          Alcotest.test_case "reachability tuple" `Quick
            test_certify_reachability;
          Alcotest.test_case "rejects absent" `Quick test_certify_rejects_absent;
          Alcotest.test_case "all reachable tuples" `Quick
            test_certify_every_reachable_tuple;
        ] );
      ( "properties",
        qsuite
          [
            prop_unify_produces_unifier;
            prop_arith_eval_consistent;
            prop_checker_rejects_mutations;
            prop_arith_unsat_sound;
            prop_arith_entails_sound;
            prop_fparser_round_trip;
          ] );
    ]
