(* Tests for the Stable Paths Problem substrate and its model-checking
   adapter: the gadget classification (Shortest-Paths / Agree / Disagree
   / Good / Bad) and the oscillation results the paper's BGP discussion
   relies on. *)

module I = Spp.Instance
module Solver = Spp.Solver
module Gadgets = Spp.Gadgets
module Ts = Spp.Ts

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Instance basics. *)

let test_instance_validation () =
  (* A permitted path must start at its node and end at the origin. *)
  (match I.make ~n:2 [ [ [ 2; 0 ] ] ] with
  | exception I.Ill_formed _ -> ()
  | _ -> Alcotest.fail "expected Ill_formed (wrong head)");
  (match I.make ~n:2 [ [ [ 1; 2 ] ] ] with
  | exception I.Ill_formed _ -> ()
  | _ -> Alcotest.fail "expected Ill_formed (wrong tail)");
  match I.make ~n:3 [ [ [ 1; 0 ] ]; [] ] with
  | _ -> ()
  | exception I.Ill_formed _ -> Alcotest.fail "valid instance rejected"

let test_instance_rank_and_neighbors () =
  let g = Gadgets.disagree in
  checkb "preferred path rank 0" true (I.rank g 1 [ 1; 2; 0 ] = Some 0);
  checkb "direct path rank 1" true (I.rank g 1 [ 1; 0 ] = Some 1);
  checkb "unknown path" true (I.rank g 1 [ 1; 2; 1; 0 ] = None);
  Alcotest.(check (list int)) "neighbors of 1" [ 0; 2 ] (I.neighbors g 1)

let test_best_choice () =
  let g = Gadgets.disagree in
  let a = I.empty_assignment g in
  (* With nothing assigned, node 1 can only go direct. *)
  checkb "initial best" true (I.best g a 1 = [ 1; 0 ]);
  a.(2) <- [ 2; 0 ];
  checkb "prefers via 2" true (I.best g a 1 = [ 1; 2; 0 ]);
  (* Loop avoidance: node 1 cannot route via a path containing itself. *)
  a.(2) <- [ 2; 1; 0 ];
  checkb "loop rejected" true (I.best g a 1 = [ 1; 0 ])

(* ------------------------------------------------------------------ *)
(* Stable solutions. *)

let test_classification () =
  let classify g = Solver.classify g in
  checkb "shortest-paths unique" true (classify Gadgets.shortest_paths = Solver.Unique);
  checkb "agree unique" true (classify Gadgets.agree = Solver.Unique);
  checkb "disagree has two" true (classify Gadgets.disagree = Solver.Multiple 2);
  checkb "good gadget unique" true (classify Gadgets.good_gadget = Solver.Unique);
  checkb "bad gadget unsolvable" true (classify Gadgets.bad_gadget = Solver.Unsolvable)

let test_disagree_solutions_shape () =
  let sols = Solver.stable_solutions Gadgets.disagree in
  checki "two solutions" 2 (List.length sols);
  (* In each solution exactly one of the nodes gets its preferred route
     through the other. *)
  List.iter
    (fun a ->
      let via_other u v = a.(u) = [ u; v; 0 ] in
      checkb "one winner" true
        ((via_other 1 2 && a.(2) = [ 2; 0 ])
        || (via_other 2 1 && a.(1) = [ 1; 0 ])))
    sols

let test_stable_solutions_are_stable () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun a ->
          checkb (name ^ " solution stable") true (I.is_stable g a);
          checkb (name ^ " solution consistent") true (I.is_consistent g a))
        (Solver.stable_solutions g))
    Gadgets.all

(* ------------------------------------------------------------------ *)
(* SPVP dynamics. *)

let test_spvp_shortest_converges () =
  let o = Solver.Spvp.run ~schedule:Solver.Spvp.Round_robin Gadgets.shortest_paths in
  checkb "converged" true o.Solver.Spvp.converged;
  checkb "not oscillated" false o.Solver.Spvp.oscillated

let test_spvp_disagree_sync_oscillates () =
  let o = Solver.Spvp.run ~schedule:Solver.Spvp.Synchronous Gadgets.disagree in
  checkb "did not converge" false o.Solver.Spvp.converged;
  checkb "oscillated" true o.Solver.Spvp.oscillated;
  checkb "cycle length 2" true (o.Solver.Spvp.cycle_length = Some 2)

let test_spvp_disagree_async_converges () =
  let o = Solver.Spvp.run ~schedule:Solver.Spvp.Round_robin Gadgets.disagree in
  checkb "converged" true o.Solver.Spvp.converged;
  checkb "landed on a stable solution" true
    (I.is_stable Gadgets.disagree o.Solver.Spvp.final)

let test_spvp_bad_gadget_diverges () =
  List.iter
    (fun schedule ->
      let o = Solver.Spvp.run ~max_steps:500 ~schedule Gadgets.bad_gadget in
      checkb "bad gadget never converges" false o.Solver.Spvp.converged)
    [ Solver.Spvp.Synchronous; Solver.Spvp.Round_robin; Solver.Spvp.Random 3 ]

let test_spvp_random_profile () =
  (* Disagree converges under every random schedule (asynchrony breaks
     the tie), but with varying delay; Agree converges fast always. *)
  let profile g = Solver.Spvp.convergence_profile ~runs:30 g in
  let dis = profile Gadgets.disagree in
  checkb "disagree always converges eventually" true
    (List.for_all fst dis);
  let agr = profile Gadgets.agree in
  checkb "agree always converges" true (List.for_all fst agr);
  let max_steps l = List.fold_left (fun m (_, s) -> max m s) 0 l in
  checkb "profiles are nontrivial" true (max_steps dis >= max_steps agr)

(* ------------------------------------------------------------------ *)
(* Model checking (E9 shapes). *)

let test_mc_disagree () =
  let r = Ts.analyze Gadgets.disagree in
  checki "two reachable stable states" 2 r.Ts.stable_reachable;
  checkb "no interleaved oscillation" true (r.Ts.oscillation = None);
  checkb "synchronous oscillation found" true r.Ts.sync_oscillates

let test_mc_bad_gadget () =
  let r = Ts.analyze Gadgets.bad_gadget in
  checki "no stable state" 0 r.Ts.stable_reachable;
  checkb "oscillation lasso found" true (r.Ts.oscillation <> None);
  (match r.Ts.oscillation with
  | Some l ->
    checkb "cycle nonempty" true (List.length l.Mcheck.Explore.cycle >= 2);
    (* every state on the cycle is unstable *)
    List.iter
      (fun s ->
        checkb "cycle state unstable" false (Ts.is_stable Gadgets.bad_gadget s))
      l.Mcheck.Explore.cycle
  | None -> ())

let test_mc_good_gadget () =
  let r = Ts.analyze Gadgets.good_gadget in
  checki "unique stable state" 1 r.Ts.stable_reachable;
  checkb "no oscillation" true (r.Ts.oscillation = None)

let test_mc_state_counts () =
  let r = Ts.analyze Gadgets.disagree in
  checkb "nontrivial state space" true (r.Ts.states > 2);
  checkb "transitions recorded" true (r.Ts.transitions > 0)

(* Generic checker sanity on a counter system. *)
let test_mc_invariant_counterexample () =
  let sys =
    Mcheck.Explore.make ~initial:[ 0 ]
      ~successors:(fun n -> if n >= 10 then [] else [ n + 1; n + 2 ])
      ()
  in
  (match Mcheck.Explore.check_invariant sys (fun n -> n <> 7) with
  | Ok _ -> Alcotest.fail "expected violation"
  | Error v ->
    checki "violating state" 7 v.Mcheck.Explore.violating;
    (* BFS produces a shortest trace: 0,2,4,6,7 or similar length 5 *)
    checkb "trace starts at initial" true (List.hd v.Mcheck.Explore.trace = 0);
    checkb "trace ends at violation" true
      (List.rev v.Mcheck.Explore.trace |> List.hd = 7));
  match Mcheck.Explore.check_invariant sys (fun n -> n <= 12) with
  | Ok stats -> checkb "invariant holds" true (stats.Mcheck.Explore.states > 0)
  | Error _ -> Alcotest.fail "invariant should hold"

let test_mc_lasso_simple () =
  (* 0 -> 1 -> 2 -> 1 is a lasso. *)
  let sys =
    Mcheck.Explore.make ~initial:[ 0 ]
      ~successors:(function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 1 ] | _ -> [])
      ()
  in
  (match Mcheck.Explore.find_lasso sys with
  | Some l -> checkb "cycle = {1,2}" true (List.sort compare l.Mcheck.Explore.cycle = [ 1; 2 ])
  | None -> Alcotest.fail "lasso expected");
  (* restricted away from the cycle: no lasso *)
  checkb "no lasso within {0}" true
    (Mcheck.Explore.find_lasso ~within:(fun n -> n = 0) sys = None)

(* NDlog transition system: reachability fixpoint is terminal and
   matches the evaluator. *)
let test_mc_ndlog_fixpoint () =
  let p =
    Ndlog.Programs.with_links (Ndlog.Programs.reachability ())
      (Ndlog.Programs.line_links 3)
  in
  let sys = Mcheck.Ndlog_ts.batched_system p in
  let stats = Mcheck.Explore.explore sys in
  checki "one terminal state (the fixpoint)" 1
    (List.length stats.Mcheck.Explore.terminal);
  let fixpoint = List.hd stats.Mcheck.Explore.terminal in
  let central = Ndlog.Eval.run_exn p in
  checkb "fixpoint matches evaluator" true
    (Ndlog.Store.Tset.equal
       (Ndlog.Store.relation "reachable" fixpoint)
       (Ndlog.Store.relation "reachable" central.Ndlog.Eval.db))

let test_mc_ndlog_invariant () =
  let p =
    Ndlog.Programs.with_links (Ndlog.Programs.reachability ())
      (Ndlog.Programs.line_links 3)
  in
  (* True invariant: every reachable source has an outgoing link. *)
  let inv db =
    Ndlog.Store.tuples "reachable" db
    |> List.for_all (fun t ->
           Ndlog.Store.tuples "link" db
           |> List.exists (fun l -> Ndlog.Value.equal l.(0) t.(0)))
  in
  (match Mcheck.Ndlog_ts.check_table_invariant p inv with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "invariant should hold on a line");
  (* False "invariant": no node reaches itself.  With symmetric links
     the loop n0 -> n1 -> n0 violates it; the checker must produce a
     counterexample trace ending in the violation. *)
  let no_self db =
    Ndlog.Store.tuples "reachable" db
    |> List.for_all (fun t -> not (Ndlog.Value.equal t.(0) t.(1)))
  in
  match Mcheck.Ndlog_ts.check_table_invariant p no_self with
  | Ok _ -> Alcotest.fail "self-reachability should be found"
  | Error v ->
    checkb "counterexample trace nonempty" true
      (List.length v.Mcheck.Explore.trace >= 2)

(* ------------------------------------------------------------------ *)
(* Soft-state transition systems (Sections 4.2 + 4.3). *)

module Soft = Mcheck.Soft_ts
module NV = Ndlog.Value

let heartbeat_program =
  Ndlog.Programs.parse_exn
    {|
materialize(ping, 3).
materialize(alive, 3).
a1 alive(@X,Y) :- ping(@X,Y).
|}

let ping_tuple = [| NV.Addr "a"; NV.Addr "b" |]
let alive_tuple = ping_tuple

let test_soft_refresh_keeps_alive () =
  (* Pings injected every 2 ticks: alive must never be absent after the
     first derivation opportunity (clock >= 1). *)
  let cfg =
    Soft.make_config ~horizon:8
      ~inject:(fun t -> if t mod 2 = 0 then [ ("ping", ping_tuple) ] else [])
      heartbeat_program
  in
  (* Invariant: whenever a live ping exists, deriving alive keeps the
     database consistent — check "alive implies ping was recently
     live": leases of alive never outlive the ping lease by more than
     the lifetime. *)
  (match Soft.check cfg (fun s -> s.Soft.clock <= 8) with
  | Ok stats ->
    checkb "explored states" true (stats.Mcheck.Explore.states > 0)
  | Error _ -> Alcotest.fail "trivial clock bound violated");
  (* With refreshes, there is a run where alive persists at the
     horizon: witnessed by a reachable state at max clock containing
     alive. *)
  let sys = Soft.system cfg in
  let stats = Mcheck.Explore.explore sys in
  checkb "alive reachable at horizon" true
    (List.exists
       (fun (s : Soft.state) ->
         s.Soft.clock = 8 && Ndlog.Store.mem "alive" alive_tuple s.Soft.db)
       stats.Mcheck.Explore.terminal)

let test_soft_expiry_is_inevitable () =
  (* Pings stop after clock 2 (the last ping's lease runs out at 5, so
     alive is derivable until clock 4 and leased until 7 at the
     latest): from clock 7 on, NO reachable state contains alive — a
     time-indexed safety property. *)
  let cfg =
    Soft.make_config ~horizon:10
      ~inject:(fun t -> if t <= 2 then [ ("ping", ping_tuple) ] else [])
      heartbeat_program
  in
  match
    Soft.check cfg (fun s ->
        s.Soft.clock < 7 || not (Ndlog.Store.mem "alive" alive_tuple s.Soft.db))
  with
  | Ok _ -> ()
  | Error v ->
    Alcotest.failf "stale alive tuple at clock %d"
      v.Mcheck.Explore.violating.Soft.clock

let test_soft_violation_detected () =
  (* The same property fails when refreshes continue: the checker must
     produce a counterexample instead. *)
  let cfg =
    Soft.make_config ~horizon:10
      ~inject:(fun t -> if t mod 2 = 0 then [ ("ping", ping_tuple) ] else [])
      heartbeat_program
  in
  match
    Soft.check cfg (fun s ->
        s.Soft.clock < 7 || not (Ndlog.Store.mem "alive" alive_tuple s.Soft.db))
  with
  | Ok _ -> Alcotest.fail "expected a counterexample"
  | Error v ->
    checkb "trace nonempty" true (List.length v.Mcheck.Explore.trace > 1)

let test_soft_lease_refresh_semantics () =
  let cfg = Soft.make_config ~horizon:10 heartbeat_program in
  let s0 = Soft.insert cfg Soft.initial_state "ping" ping_tuple in
  checkb "leased" true (List.mem (("ping", ping_tuple), 3) s0.Soft.leases);
  (* ticking twice then refreshing extends the lease *)
  let s2 = Soft.tick cfg (Soft.tick cfg s0) in
  let s2' = Soft.insert cfg s2 "ping" ping_tuple in
  checkb "refreshed lease" true
    (List.mem (("ping", ping_tuple), 5) s2'.Soft.leases);
  (* without refresh, the tuple dies at its deadline *)
  let s3 = Soft.tick cfg (Soft.tick cfg (Soft.tick cfg s0)) in
  checkb "expired" false (Ndlog.Store.mem "ping" ping_tuple s3.Soft.db)

let () =
  Alcotest.run "spp"
    [
      ( "instance",
        [
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "rank and neighbors" `Quick
            test_instance_rank_and_neighbors;
          Alcotest.test_case "best choice" `Quick test_best_choice;
        ] );
      ( "solver",
        [
          Alcotest.test_case "gadget classification" `Quick test_classification;
          Alcotest.test_case "disagree solutions" `Quick
            test_disagree_solutions_shape;
          Alcotest.test_case "solutions are stable" `Quick
            test_stable_solutions_are_stable;
        ] );
      ( "spvp",
        [
          Alcotest.test_case "shortest converges" `Quick
            test_spvp_shortest_converges;
          Alcotest.test_case "disagree sync oscillates" `Quick
            test_spvp_disagree_sync_oscillates;
          Alcotest.test_case "disagree async converges" `Quick
            test_spvp_disagree_async_converges;
          Alcotest.test_case "bad gadget diverges" `Quick
            test_spvp_bad_gadget_diverges;
          Alcotest.test_case "random profiles" `Quick test_spvp_random_profile;
        ] );
      ( "mcheck",
        [
          Alcotest.test_case "disagree analysis" `Quick test_mc_disagree;
          Alcotest.test_case "bad gadget analysis" `Quick test_mc_bad_gadget;
          Alcotest.test_case "good gadget analysis" `Quick test_mc_good_gadget;
          Alcotest.test_case "state counts" `Quick test_mc_state_counts;
          Alcotest.test_case "invariant counterexample" `Quick
            test_mc_invariant_counterexample;
          Alcotest.test_case "lasso detection" `Quick test_mc_lasso_simple;
          Alcotest.test_case "ndlog fixpoint" `Quick test_mc_ndlog_fixpoint;
          Alcotest.test_case "ndlog invariant" `Quick test_mc_ndlog_invariant;
        ] );
      ( "soft_ts",
        [
          Alcotest.test_case "refresh keeps alive" `Quick
            test_soft_refresh_keeps_alive;
          Alcotest.test_case "expiry inevitable" `Quick
            test_soft_expiry_is_inevitable;
          Alcotest.test_case "violation detected" `Quick
            test_soft_violation_detected;
          Alcotest.test_case "lease semantics" `Quick
            test_soft_lease_refresh_semantics;
        ] );
    ]
