(* Tests for the metarouting library: base algebras' axiom obligations
   (E4), composition preservation theorems (E5), and the generic
   path-vector solver's convergence behaviour. *)

module RA = Algebra.Routing_algebra
module Axioms = Algebra.Axioms
module Base = Algebra.Base
module Compose = Algebra.Compose
module Theorems = Algebra.Theorems
module Solver = Algebra.Solver

let checkb = Alcotest.(check bool)

let holds a ax = Axioms.holds (Axioms.check_all a) ax

(* ------------------------------------------------------------------ *)
(* Base algebra axioms (the E4 table, asserted). *)

let test_add_cost_axioms () =
  let a = Base.add_cost () in
  checkb "maximality" true (holds a Axioms.Maximality);
  checkb "absorption" true (holds a Axioms.Absorption);
  checkb "monotone" true (holds a Axioms.Monotonicity);
  checkb "not strictly monotone (zero label)" false
    (holds a Axioms.Strict_monotonicity);
  checkb "isotone" true (holds a Axioms.Isotonicity)

let test_add_cost_strict_axioms () =
  let a = Base.add_cost_strict () in
  checkb "strictly monotone" true (holds a Axioms.Strict_monotonicity);
  checkb "strictly isotone" true (holds a Axioms.Strict_isotonicity);
  checkb "well behaved" true (Axioms.well_behaved (Axioms.check_all a))

let test_hop_count_axioms () =
  let a = Base.hop_count () in
  checkb "strictly monotone" true (holds a Axioms.Strict_monotonicity);
  checkb "isotone" true (holds a Axioms.Isotonicity)

let test_local_pref_axioms () =
  let a = Base.local_pref () in
  checkb "maximality" true (holds a Axioms.Maximality);
  checkb "absorption" true (holds a Axioms.Absorption);
  (* The canonical violation: a link may assign a better preference. *)
  checkb "NOT monotone" false (holds a Axioms.Monotonicity);
  checkb "isotone" true (holds a Axioms.Isotonicity)

let test_bandwidth_axioms () =
  let a = Base.bandwidth () in
  checkb "monotone" true (holds a Axioms.Monotonicity);
  checkb "not strictly monotone" false (holds a Axioms.Strict_monotonicity);
  checkb "isotone" true (holds a Axioms.Isotonicity);
  checkb "not strictly isotone" false (holds a Axioms.Strict_isotonicity)

let test_reliability_axioms () =
  let a = Base.reliability () in
  checkb "monotone" true (holds a Axioms.Monotonicity);
  checkb "isotone" true (holds a Axioms.Isotonicity)

let test_all_preorders () =
  List.iter
    (fun packed ->
      let r = Axioms.check_packed packed in
      match r.Axioms.preorder with
      | Axioms.Discharged _ -> ()
      | Axioms.Refuted msg ->
        Alcotest.failf "%s preference is not a preorder: %s" r.Axioms.algebra
          msg)
    (Base.all ())

let test_counterexamples_are_printable () =
  let a = Base.local_pref () in
  match Axioms.check a Axioms.Monotonicity with
  | Axioms.Refuted msg -> checkb "message nonempty" true (String.length msg > 0)
  | Axioms.Discharged _ -> Alcotest.fail "expected refutation"

(* ------------------------------------------------------------------ *)
(* Composition. *)

let test_bgp_system_shape () =
  let bgp = Compose.bgp_system () in
  Alcotest.(check string) "name" "BGPSystem" bgp.RA.name;
  (* LP compares first: better local pref wins regardless of cost. *)
  checkb "lp dominates" true (bgp.RA.pref (0, Base.Fin 100) (1, Base.Fin 1) < 0);
  (* Ties on LP break on cost. *)
  checkb "cost breaks ties" true (bgp.RA.pref (1, Base.Fin 1) (1, Base.Fin 2) < 0);
  (* BGPSystem inherits lpA's monotonicity violation. *)
  checkb "not monotone" false (holds bgp Axioms.Monotonicity)

let test_safe_bgp_system () =
  let safe = Compose.safe_bgp_system () in
  let r = Axioms.check_all safe in
  checkb "monotone" true (Axioms.holds r Axioms.Monotonicity);
  checkb "strictly monotone" true (Axioms.holds r Axioms.Strict_monotonicity);
  (* Local preference in the first coordinate is not strictly isotone
     (labels collapse different preferences to the same value), so the
     lexical product is not isotone: convergence is guaranteed by strict
     monotonicity, optimality is not — exactly BGP's situation. *)
  checkb "not isotone" false (Axioms.holds r Axioms.Isotonicity)

let test_lex_prohibited_normalization () =
  let lex = Compose.lex_product (Base.add_cost ()) (Base.bandwidth ()) in
  (* applying any label to a half-prohibited pair yields phi *)
  let l = List.hd lex.RA.label_samples in
  checkb "normalizes to phi" true
    (lex.RA.apply l (Base.Inf, 100) = lex.RA.prohibited);
  checkb "absorption" true (holds lex Axioms.Absorption)

let test_lex_preservation_sound_all_pairs () =
  (* E5's soundness claim over the full catalogue of int-labelled
     algebras. *)
  let algebras =
    [
      RA.pack (Base.add_cost ());
      RA.pack (Base.add_cost_strict ());
      RA.pack (Base.local_pref ());
      RA.pack (Base.bandwidth ());
      RA.pack (Base.reliability ());
    ]
  in
  List.iter
    (fun (RA.Packed a) ->
      List.iter
        (fun (RA.Packed b) ->
          let p = Theorems.lex_preservation a b in
          if not (Theorems.sound p) then
            Alcotest.failf "unsound prediction: %a" Theorems.pp_prediction p)
        algebras)
    algebras

let test_lex_preservation_known_cases () =
  (* strict cost (x) anything monotone stays monotone *)
  let p = Theorems.lex_preservation (Base.add_cost_strict ()) (Base.add_cost ()) in
  checkb "predicts monotone" true p.Theorems.predicts_monotone;
  checkb "composite monotone" true p.Theorems.composite_monotone;
  checkb "composite strictly monotone" true p.Theorems.composite_strictly_monotone;
  (* lp (x) cost: no prediction, and indeed not monotone *)
  let q = Theorems.lex_preservation (Base.local_pref ()) (Base.add_cost ()) in
  checkb "no monotonicity prediction" false q.Theorems.predicts_monotone;
  checkb "composite indeed not monotone" false q.Theorems.composite_monotone

let test_restrict_labels () =
  (* addA restricted to positive labels becomes strictly monotone. *)
  let a = Compose.restrict_labels ~keep:(fun l -> l > 0) (Base.add_cost ()) in
  checkb "strictly monotone after restriction" true
    (holds a Axioms.Strict_monotonicity)

let test_label_union () =
  let u = Compose.label_union (Base.add_cost ()) (Base.add_cost_strict ()) in
  checkb "monotone" true (holds u Axioms.Monotonicity);
  checkb "not strictly monotone (zero labels from addA)" false
    (holds u Axioms.Strict_monotonicity)

let test_scale_labels () =
  let a = Compose.scale_labels ~factor:10 (Base.add_cost_strict ()) in
  checkb "still strictly monotone" true (holds a Axioms.Strict_monotonicity);
  checkb "apply scaled" true (a.RA.apply 2 (Base.Fin 1) = Base.Fin 21)

(* ------------------------------------------------------------------ *)
(* Generic solver. *)

let test_solver_shortest_path () =
  let a = Base.add_cost () in
  let g = Solver.line_graph ~label:(fun i -> i + 1) 4 in
  let o = Solver.solve a g ~dest:"n0" in
  checkb "converged" true o.Solver.converged;
  checkb "n3 cost = 1+2+3" true
    (Solver.Smap.find "n3" o.Solver.signatures = Base.Fin 6);
  checkb "n0 at origin" true (Solver.Smap.find "n0" o.Solver.signatures = Base.Fin 0)

let test_solver_ring () =
  let a = Base.hop_count () in
  let g = Solver.ring_graph 6 in
  let o = Solver.solve a g ~dest:"n0" in
  checkb "converged" true o.Solver.converged;
  checkb "opposite node 3 hops" true
    (Solver.Smap.find "n3" o.Solver.signatures = Base.Fin 3)

let test_solver_bandwidth () =
  let a = Base.bandwidth () in
  let g =
    Solver.graph ~nodes:[ "s"; "m"; "d" ]
      ~edges:[ ("s", "m", 10); ("m", "d", 100); ("s", "d", 5) ]
  in
  let o = Solver.solve a g ~dest:"d" in
  checkb "converged" true o.Solver.converged;
  (* widest path s->m->d has bottleneck 10, beating direct 5 *)
  checkb "widest is 10" true (Solver.Smap.find "s" o.Solver.signatures = 10)

let test_solver_matches_optimal_when_isotone () =
  let a = Base.add_cost () in
  List.iter
    (fun k ->
      let g = Solver.ring_graph ~label:(fun i -> 1 + (i mod 3)) k in
      let o = Solver.solve a g ~dest:"n0" in
      checkb "converged" true o.Solver.converged;
      List.iter
        (fun u ->
          let fixpoint = Solver.Smap.find u o.Solver.signatures in
          let opt = Solver.optimal_signature a g ~dest:"n0" u in
          checkb (u ^ " optimal") true (fixpoint = opt))
        g.Solver.g_nodes)
    [ 3; 5; 6 ]

let test_solver_unreachable_is_prohibited () =
  let a = Base.add_cost () in
  let g =
    Solver.graph ~nodes:[ "a"; "b"; "c" ] ~edges:[ ("a", "b", 1); ("b", "a", 1) ]
  in
  let o = Solver.solve a g ~dest:"a" in
  checkb "converged" true o.Solver.converged;
  checkb "c unreachable" true (Solver.Smap.find "c" o.Solver.signatures = Base.Inf)

let test_solver_well_behaved_catalogue_converges () =
  (* Every algebra whose obligations discharge must converge on every
     test topology: the metarouting guarantee, checked end to end. *)
  let graphs = [ Solver.line_graph 5; Solver.ring_graph 6 ] in
  let check_one (type s) (a : (s, int) RA.t) =
    let r = Axioms.check_all a in
    checkb (a.RA.name ^ " well behaved") true (Axioms.well_behaved r);
    List.iter
      (fun g ->
        let o = Solver.solve a g ~dest:"n0" in
        checkb (a.RA.name ^ " converges") true o.Solver.converged)
      graphs
  in
  check_one (Base.add_cost ());
  check_one (Base.add_cost_strict ());
  check_one (Base.reliability ())

let test_solver_bgp_runs () =
  (* The (non-monotone) BGPSystem still runs; the solver simply cannot
     promise convergence a priori.  On this small graph it does
     stabilize, preferring low local-pref routes. *)
  let bgp = Compose.bgp_system () in
  let g =
    Solver.graph ~nodes:[ "a"; "b"; "d" ]
      ~edges:
        [
          ("a", "d", (1, 10));  (* lp 1, cost 10 *)
          ("a", "b", (0, 1));  (* lp 0: preferred *)
          ("b", "d", (2, 1));
        ]
  in
  let o = Solver.solve bgp g ~dest:"d" in
  checkb "terminated" true o.Solver.converged;
  (* a's best route goes via b because the last-applied label wins the
     lp comparison (0 < 1). *)
  let sa = Solver.Smap.find "a" o.Solver.signatures in
  checkb "a picked lp 0" true (fst sa = 0)

(* ------------------------------------------------------------------ *)
(* Properties. *)

let prop_lex_pref_is_lexicographic =
  (* Generated signatures avoid each component's prohibited element
     (lpA's 4 and bandA's 0): mixed-prohibited pairs normalize to phi
     and compare under phi semantics instead of lexicographically. *)
  QCheck.Test.make ~name:"lex pref is lexicographic" ~count:200
    QCheck.(
      quad (int_range 0 3) (int_range 1 100) (int_range 0 3) (int_range 1 100))
    (fun (a1, b1, a2, b2) ->
      let lex = Compose.lex_product (Base.local_pref ()) (Base.bandwidth ()) in
      let expected =
        let c = compare a1 a2 in
        if c <> 0 then c else compare b2 b1
      in
      let got = lex.RA.pref (a1, b1) (a2, b2) in
      (expected = 0 && got = 0)
      || (expected < 0 && got < 0)
      || (expected > 0 && got > 0))

let prop_solver_deterministic =
  QCheck.Test.make ~name:"solver is deterministic" ~count:30
    (QCheck.int_range 3 7)
    (fun k ->
      let a = Base.add_cost () in
      let g = Solver.ring_graph ~label:(fun i -> 1 + (i mod 2)) k in
      let o1 = Solver.solve a g ~dest:"n0" in
      let o2 = Solver.solve a g ~dest:"n0" in
      Solver.Smap.equal ( = ) o1.Solver.signatures o2.Solver.signatures)

let prop_monotone_catalogue_never_diverges =
  QCheck.Test.make ~name:"monotone algebras converge on random rings"
    ~count:30
    QCheck.(pair (int_range 3 8) (int_range 1 5))
    (fun (k, seed) ->
      let a = Base.add_cost_strict () in
      let g = Solver.ring_graph ~label:(fun i -> 1 + ((i * seed) mod 7)) k in
      (Solver.solve a g ~dest:"n0").Solver.converged)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "algebra"
    [
      ( "base_axioms",
        [
          Alcotest.test_case "addA" `Quick test_add_cost_axioms;
          Alcotest.test_case "addA+ (strict)" `Quick
            test_add_cost_strict_axioms;
          Alcotest.test_case "hopA" `Quick test_hop_count_axioms;
          Alcotest.test_case "lpA" `Quick test_local_pref_axioms;
          Alcotest.test_case "bandA" `Quick test_bandwidth_axioms;
          Alcotest.test_case "relA" `Quick test_reliability_axioms;
          Alcotest.test_case "preorders" `Quick test_all_preorders;
          Alcotest.test_case "counterexamples" `Quick
            test_counterexamples_are_printable;
        ] );
      ( "compose",
        [
          Alcotest.test_case "BGPSystem" `Quick test_bgp_system_shape;
          Alcotest.test_case "SafeBGPSystem" `Quick test_safe_bgp_system;
          Alcotest.test_case "prohibited normalization" `Quick
            test_lex_prohibited_normalization;
          Alcotest.test_case "lex preservation sound" `Quick
            test_lex_preservation_sound_all_pairs;
          Alcotest.test_case "lex preservation cases" `Quick
            test_lex_preservation_known_cases;
          Alcotest.test_case "restrict labels" `Quick test_restrict_labels;
          Alcotest.test_case "label union" `Quick test_label_union;
          Alcotest.test_case "scale labels" `Quick test_scale_labels;
        ] );
      ( "solver",
        [
          Alcotest.test_case "shortest path" `Quick test_solver_shortest_path;
          Alcotest.test_case "ring hops" `Quick test_solver_ring;
          Alcotest.test_case "widest path" `Quick test_solver_bandwidth;
          Alcotest.test_case "optimal when isotone" `Quick
            test_solver_matches_optimal_when_isotone;
          Alcotest.test_case "unreachable" `Quick
            test_solver_unreachable_is_prohibited;
          Alcotest.test_case "well-behaved converge" `Quick
            test_solver_well_behaved_catalogue_converges;
          Alcotest.test_case "BGPSystem runs" `Quick test_solver_bgp_runs;
        ] );
      ( "properties",
        qsuite
          [
            prop_lex_pref_is_lexicographic;
            prop_solver_deterministic;
            prop_monotone_catalogue_never_diverges;
          ] );
    ]
