The fvnc driver exposes the FVN arcs on NDlog files.

Static analysis (safety, stratification, localization status):

  $ fvnc check pv.ndlog
  4 rules, 4 facts, 4 declarations
  base relations:    link
  derived relations: bestPath, bestPathCost, path
  stratum 0: link, path
  stratum 1: bestPath, bestPathCost
  localization: rewrite required (see fvnc localize)

Centralized evaluation (arc 7):

  $ fvnc run pv.ndlog -r bestPathCost
  converged=true rounds=5 derivations=18
  bestPathCost (6 tuples):
    bestPathCost(@a,@b,1)
    bestPathCost(@a,@c,3)
    bestPathCost(@b,@a,1)
    bestPathCost(@b,@c,2)
    bestPathCost(@c,@a,3)
    bestPathCost(@c,@b,2)

Distributed evaluation over the simulator agrees:

  $ fvnc dist pv.ndlog -r bestPathCost
  quiesced=true simulated_time=2.00 messages=6 dropped=0 inserts=14
  bestPathCost (6 tuples):
    bestPathCost(@a,@b,1)
    bestPathCost(@a,@c,3)
    bestPathCost(@b,@a,1)
    bestPathCost(@b,@c,2)
    bestPathCost(@c,@a,3)
    bestPathCost(@c,@b,2)

Localization introduces the inverted link copy (arc 7 prerequisite):

  $ fvnc localize pv.ndlog | head -7
  % relocated link from position 0 to position 1
  materialize(link, infinity).
  materialize(path, infinity).
  materialize(bestPathCost, infinity).
  materialize(bestPath, infinity).
  materialize(link_l1, infinity).
  link(@a,@b,1).

The logical specification (arc 4):

  $ fvnc spec pv.ndlog | grep -c 'def\|axiom'
  6

Static verification (arc 5), stripping the timing for stability:

  $ fvnc prove pv.ndlog -p route-optimality | sed 's/(.*)/<stats>/'
    PROVED bestPathStrong <stats>

A goal stated on the command line:

  $ fvnc prove pv.ndlog -g 'forall S D C. bestPathCost(S,D,C) => (exists P. path(S,D,P,C))' | sed 's/(.*)/<stats>/'
    PROVED goal_1 <stats>

Induction over the recursive path definition:

  $ fvnc prove pv.ndlog --induct path \
  >   --assume 'forall S D C. link(S,D,C) => 1 <= C' \
  >   -g 'forall S D P C. path(S,D,P,C) => 1 <= C'
    PROVED goal_1 by induction on path (20 proof steps)

Provenance of a derived tuple, with a kernel-checked certificate:

  $ fvnc explain pv.ndlog 'path(@a,c,[a,b,c],3)' --certify
  path(@a,@c,[@a; @b; @c],3)  [rule r2]
    fact link(@a,@b,1)
    path(@b,@c,[@b; @c],2)  [rule r1]
      fact link(@b,@c,2)
  
  certificate: kernel accepted a 35-step proof of path(@a, @c, [@a; @b; @c], 3) from the completion + base facts

A failing proof exits nonzero:

  $ fvnc prove pv.ndlog -g 'forall S D P C. path(S,D,P,C) => bestPath(S,D,P,C)' >/dev/null 2>&1
  [2]

Unsafe programs are rejected:

  $ echo 'p(@X,Y) :- q(@X).' | fvnc check -
  fvnc: unsafe rule p(@X,Y) :- q(@X).: head variables not bound by body: Y
  [1]

The soft-state rewrite (Section 4.2):

  $ printf 'materialize(ping, 5).\nmaterialize(alive, 5).\na1 alive(@X,Y) :- ping(@X,Y).\nping(@a, b).\n' | fvnc softstate -
  % soft predicates: ping, alive; 2 timestamp columns, 1 liveness guards
  materialize(ping, infinity).
  materialize(alive, infinity).
  ping(@a,@b,0).
  a1 alive(@X,Y,Tnow) :- clock(Tnow), ping(@X,Y,Ts_1), (Ts_1+5)>Tnow.

Rule strands (the Click-style dataflow plans of P2):

  $ fvnc strands pv.ndlog
  r1: delta(link) -> bind(P := f_init(S,D)) -> project(path)
  r2: delta(link) -> join(path) -> bind(C := (C1+C2)) -> bind(P := f_concatPath(S,P2)) -> filter(f_inPath(P2,S) == false) -> project(path)
  r2: delta(path) -> join(link) -> bind(C := (C1+C2)) -> bind(P := f_concatPath(S,P2)) -> filter(f_inPath(P2,S) == false) -> project(path)
  r4: delta(bestPathCost) -> join(path) -> project(bestPath)
  r4: delta(path) -> join(bestPathCost) -> project(bestPath)
