(* Tests for the distributed NDlog runtime: distributed execution must
   agree with the centralized evaluator, soft state must expire, and the
   distance-vector state machine must count to infinity after a failure
   (Section 3.1's claim, reproduced by experiment E2). *)

module Ast = Ndlog.Ast
module Store = Ndlog.Store
module Eval = Ndlog.Eval
module Programs = Ndlog.Programs
module Localize = Ndlog.Localize
module V = Ndlog.Value
module Topo = Netsim.Topology
module Runtime = Dist.Runtime
module Dv = Dist.Dv

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Build the simulator topology matching a set of link facts. *)
let topo_of_links links =
  let t = Topo.create () in
  List.iter
    (fun (f : Ast.fact) ->
      match f.Ast.fact_args with
      | [ s; d; c ] ->
        Topo.add_link ~cost:(V.as_int c) t (V.as_addr s) (V.as_addr d)
      | _ -> ())
    links;
  t

let localized p =
  match Localize.rewrite_program p with
  | Ok r -> r.Localize.program
  | Error e -> Alcotest.failf "localization failed: %a" Localize.pp_error e

(* Run a program distributed and centralized; compare a relation. *)
let compare_dist_centralized ?(preds = [ "path"; "bestPath"; "bestPathCost" ])
    program links =
  let full = Programs.with_links program links in
  let central = Eval.run_exn full in
  let loc = localized full in
  let topo = topo_of_links links in
  let rt = Runtime.create topo loc in
  Runtime.load_facts rt;
  let report = Runtime.run rt in
  checkb "distributed run quiesced" true report.Runtime.stats.Netsim.Sim.quiesced;
  let dist_db = Runtime.global_store rt in
  List.iter
    (fun pred ->
      let a = Store.relation pred central.Eval.db in
      let b = Store.relation pred dist_db in
      if not (Store.Tset.equal a b) then
        Alcotest.failf "relation %s differs:@.central=%d tuples, dist=%d tuples"
          pred (Store.Tset.cardinal a) (Store.Tset.cardinal b))
    preds

let test_dist_line () =
  compare_dist_centralized (Programs.path_vector ()) (Programs.line_links 3)

let test_dist_ring () =
  compare_dist_centralized (Programs.path_vector ()) (Programs.ring_links 5)

let test_dist_asymmetric () =
  let links =
    [
      Programs.link_fact "n0" "n1" 10;
      Programs.link_fact "n1" "n0" 10;
      Programs.link_fact "n0" "n2" 1;
      Programs.link_fact "n2" "n0" 1;
      Programs.link_fact "n2" "n1" 2;
      Programs.link_fact "n1" "n2" 2;
    ]
  in
  compare_dist_centralized (Programs.path_vector ()) links

let test_dist_random () =
  List.iter
    (fun seed ->
      compare_dist_centralized ~preds:[ "reachable" ] (Programs.reachability ())
        (Programs.random_links ~seed ~extra:2 6))
    [ 1; 5; 9 ]

let test_dist_reachability_scale () =
  compare_dist_centralized ~preds:[ "reachable" ] (Programs.reachability ())
    (Programs.ring_links 12)

let test_dist_best_path_values () =
  (* Check specific routing results at their owning node. *)
  let links = Programs.line_links 4 in
  let full = Programs.with_links (Programs.path_vector ()) links in
  let loc = localized full in
  let topo = topo_of_links links in
  let rt = Runtime.create topo loc in
  Runtime.load_facts rt;
  ignore (Runtime.run rt);
  let n0 = Runtime.node_store rt "n0" in
  let best =
    Store.tuples "bestPathCost" n0
    |> List.find_opt (fun t ->
           V.equal t.(0) (V.Addr "n0") && V.equal t.(1) (V.Addr "n3"))
  in
  (match best with
  | Some t -> checki "n0->n3 = 3" 3 (V.as_int t.(2))
  | None -> Alcotest.fail "no bestPathCost at n0");
  (* bestPath tuples for n0 live at n0, not elsewhere *)
  let n1 = Runtime.node_store rt "n1" in
  checkb "n1 has no n0-rooted bestPath" true
    (Store.tuples "bestPath" n1
    |> List.for_all (fun t -> not (V.equal t.(0) (V.Addr "n0"))))

let test_dist_message_accounting () =
  let links = Programs.line_links 3 in
  let full = Programs.with_links (Programs.path_vector ()) links in
  let loc = localized full in
  let rt = Runtime.create (topo_of_links links) loc in
  Runtime.load_facts rt;
  let report = Runtime.run rt in
  let stats = report.Runtime.stats in
  checkb "messages flowed" true (stats.Netsim.Sim.messages_delivered > 0);
  checkb "inserts happened" true (report.Runtime.total_inserts > 0)

let test_dist_rejects_unlocalized () =
  let p =
    Programs.with_links (Programs.path_vector ()) (Programs.line_links 2)
  in
  (* path_vector's r2 spans two locations: must be rejected raw. *)
  match Runtime.create (topo_of_links p.Ast.facts) p with
  | exception Runtime.Not_localized _ -> ()
  | _ -> Alcotest.fail "expected Not_localized"

(* ------------------------------------------------------------------ *)
(* Soft state in the distributed runtime. *)

let test_dist_soft_state_expiry () =
  (* Heartbeats propagate, then expire when the source stops refreshing
     (no refresh loop is installed here). *)
  let links = Programs.line_links 2 in
  let p = Programs.with_links (Programs.heartbeat ~lifetime:5) links in
  let loc = localized p in
  let rt = Runtime.create (topo_of_links links) loc in
  Runtime.load_facts rt;
  ignore (Runtime.run rt ~until:2.0);
  let alive_at node =
    Store.cardinal "aliveNeighbor" (Runtime.node_store rt node)
  in
  checkb "alive early" true (alive_at "n1" > 0);
  ignore (Runtime.run rt ~until:60.0);
  checki "expired later" 0 (alive_at "n1")

(* ------------------------------------------------------------------ *)
(* Distance-vector protocol: convergence and count-to-infinity. *)

let test_dv_converges () =
  let topo = Topo.line 3 in
  let dv = Dv.create topo in
  let report = Dv.run dv in
  checkb "quiesced" true report.Dv.stats.Netsim.Sim.quiesced;
  checkb "no infinity" false report.Dv.counted_to_infinity;
  checkb "n0 reaches n2 at cost 2" true (Dv.route_cost dv "n0" "n2" = Some 2);
  checkb "n2 reaches n0 at cost 2" true (Dv.route_cost dv "n2" "n0" = Some 2)

let test_dv_ring_shortest () =
  let topo = Topo.ring 6 in
  let dv = Dv.create topo in
  ignore (Dv.run dv);
  checkb "opposite nodes cost 3" true (Dv.route_cost dv "n0" "n3" = Some 3);
  checkb "neighbors cost 1" true (Dv.route_cost dv "n0" "n1" = Some 1)

let test_dv_count_to_infinity () =
  (* Line n0 - n1 - n2; fail n0<->n1 after convergence.  n2's stale
     route to n0 bounces with n1 until the infinity threshold. *)
  let topo = Topo.line 3 in
  let dv = Dv.create ~infinity_threshold:32 ~period:5.0 topo in
  Dv.fail_link_at dv ~time:20.0 "n0" "n1";
  let report = Dv.run dv ~until:2000.0 ~max_events:100_000 in
  checkb "counted to infinity" true report.Dv.counted_to_infinity;
  checkb "cost climbed past threshold" true (report.Dv.max_cost_seen >= 32);
  (* After the storm, no usable route to the unreachable node remains. *)
  checkb "n2 lost its route to n0" true (Dv.route_cost dv "n2" "n0" = None)

let test_dv_no_divergence_without_failure () =
  let topo = Topo.line 3 in
  let dv = Dv.create ~infinity_threshold:32 ~period:5.0 topo in
  let report = Dv.run dv ~until:200.0 ~max_events:100_000 in
  checkb "stable under periodic adverts" false report.Dv.counted_to_infinity;
  checkb "max cost small" true (report.Dv.max_cost_seen <= 2)

let test_dv_failure_with_alternate_path () =
  (* On a ring, losing one link just reroutes the long way. *)
  let topo = Topo.ring 4 in
  let dv = Dv.create ~infinity_threshold:32 ~period:5.0 topo in
  Dv.fail_link_at dv ~time:20.0 "n0" "n1";
  ignore (Dv.run dv ~until:300.0 ~max_events:200_000);
  checkb "rerouted n0->n1 the long way" true (Dv.route_cost dv "n0" "n1" = Some 3)

let test_dv_converges_under_loss () =
  (* Periodic advertisement makes the naive protocol robust to loss. *)
  let topo = Topo.create () in
  Topo.add_duplex ~loss:0.3 topo "n0" "n1";
  Topo.add_duplex ~loss:0.3 topo "n1" "n2";
  let dv = Dv.create ~seed:3 ~period:5.0 topo in
  let report = Dv.run dv ~until:300.0 ~max_events:200_000 in
  checkb "messages were lost" true
    (report.Dv.stats.Netsim.Sim.messages_dropped > 0);
  checkb "n0 still reaches n2" true (Dv.route_cost dv "n0" "n2" = Some 2);
  checkb "n2 still reaches n0" true (Dv.route_cost dv "n2" "n0" = Some 2)

let () =
  Alcotest.run "dist"
    [
      ( "runtime",
        [
          Alcotest.test_case "line = centralized" `Quick test_dist_line;
          Alcotest.test_case "ring = centralized" `Quick test_dist_ring;
          Alcotest.test_case "asymmetric costs" `Quick test_dist_asymmetric;
          Alcotest.test_case "random reachability" `Quick test_dist_random;
          Alcotest.test_case "reachability scale" `Quick
            test_dist_reachability_scale;
          Alcotest.test_case "best path placement" `Quick
            test_dist_best_path_values;
          Alcotest.test_case "message accounting" `Quick
            test_dist_message_accounting;
          Alcotest.test_case "rejects unlocalized" `Quick
            test_dist_rejects_unlocalized;
          Alcotest.test_case "soft state expiry" `Quick
            test_dist_soft_state_expiry;
        ] );
      ( "distance_vector",
        [
          Alcotest.test_case "converges" `Quick test_dv_converges;
          Alcotest.test_case "ring shortest" `Quick test_dv_ring_shortest;
          Alcotest.test_case "count to infinity" `Quick
            test_dv_count_to_infinity;
          Alcotest.test_case "stable without failure" `Quick
            test_dv_no_divergence_without_failure;
          Alcotest.test_case "alternate path reroute" `Quick
            test_dv_failure_with_alternate_path;
          Alcotest.test_case "converges under loss" `Quick
            test_dv_converges_under_loss;
        ] );
    ]
