(* Metarouting (Section 3.3): designing routing protocols from algebras
   with machine-discharged proof obligations.

   The paper's running example is

     BGPSystem: THEORY = lexProduct[LP, RC]

   i.e. compare local preference first, route cost second.  This example
   - discharges (or refutes, with counterexamples) the axiom
     obligations for every base algebra in the catalogue;
   - builds BGPSystem and shows it inherits lpA's monotonicity
     violation, while a restricted variant is provably well-behaved;
   - validates the lexical-product preservation theorems;
   - runs the generic algebra-parameterized path-vector solver,
     demonstrating the metarouting guarantee: discharged obligations
     imply convergence.

   Run with:  dune exec examples/metarouting_compose.exe *)

module RA = Algebra.Routing_algebra
module Axioms = Algebra.Axioms
module Base = Algebra.Base
module Compose = Algebra.Compose
module Solver = Algebra.Solver

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  section "Axiom obligations for the base algebras";
  List.iter
    (fun packed -> Fmt.pr "%a@." Axioms.pp_report (Axioms.check_packed packed))
    (Base.all ());

  section "BGPSystem = lexProduct[LP, RC] (the paper's snippet)";
  let bgp = Compose.bgp_system () in
  Fmt.pr "%a@." Axioms.pp_report (Axioms.check_all bgp);

  section "A relaxed, well-behaved variant (Section 4.1's design space)";
  let safe = Compose.safe_bgp_system () in
  Fmt.pr "%a@." Axioms.pp_report (Axioms.check_all safe);

  section "Lexical-product preservation theorems, validated";
  let algebras () =
    [ RA.pack (Base.add_cost ()); RA.pack (Base.add_cost_strict ());
      RA.pack (Base.local_pref ()); RA.pack (Base.bandwidth ()) ]
  in
  List.iter
    (fun (RA.Packed a) ->
      List.iter
        (fun (RA.Packed b) ->
          Fmt.pr "%a@." Algebra.Theorems.pp_prediction
            (Algebra.Theorems.lex_preservation a b))
        (algebras ()))
    (algebras ());

  section "Running the generated protocols (the metarouting guarantee)";
  let graph = Solver.ring_graph ~label:(fun i -> 1 + (i mod 3)) 6 in
  let run_one name solve =
    let converged, rounds = solve () in
    Fmt.pr "  %-24s converged=%b rounds=%d@." name converged rounds
  in
  run_one "addA (shortest path)" (fun () ->
      let o = Solver.solve (Base.add_cost ()) graph ~dest:"n0" in
      (o.Solver.converged, o.Solver.rounds));
  run_one "hopA (hop count)" (fun () ->
      let o = Solver.solve (Base.hop_count ()) graph ~dest:"n0" in
      (o.Solver.converged, o.Solver.rounds));
  run_one "bandA (widest path)" (fun () ->
      let o = Solver.solve (Base.bandwidth ()) graph ~dest:"n0" in
      (o.Solver.converged, o.Solver.rounds));
  run_one "BGPSystem (lex)" (fun () ->
      let g =
        {
          Solver.g_nodes = graph.Solver.g_nodes;
          g_edges =
            List.map (fun (u, v, l) -> (u, v, (1, l))) graph.Solver.g_edges;
        }
      in
      let o = Solver.solve (Compose.bgp_system ()) g ~dest:"n0" in
      (o.Solver.converged, o.Solver.rounds));

  section "Optimality under isotonicity";
  let a = Base.add_cost () in
  let o = Solver.solve a graph ~dest:"n0" in
  List.iter
    (fun u ->
      let fix = Solver.Smap.find u o.Solver.signatures in
      let opt = Solver.optimal_signature a graph ~dest:"n0" u in
      Fmt.pr "  %s: fixpoint %a, enumerated optimum %a%s@." u Base.pp_cost fix
        Base.pp_cost opt
        (if fix = opt then "" else "   <-- MISMATCH"))
    graph.Solver.g_nodes
