examples/bgp_disagree.mli:
