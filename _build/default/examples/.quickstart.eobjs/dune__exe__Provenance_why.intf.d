examples/provenance_why.mli:
