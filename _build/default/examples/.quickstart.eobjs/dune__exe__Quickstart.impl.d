examples/quickstart.ml: Array Dist Fmt Fvn List Logic Ndlog Netsim
