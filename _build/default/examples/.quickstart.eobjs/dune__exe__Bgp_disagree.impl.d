examples/bgp_disagree.ml: Component Fmt Fvn List Logic Ndlog Printf Spp
