examples/count_to_infinity.ml: Array Dist Fmt List Ndlog Netsim
