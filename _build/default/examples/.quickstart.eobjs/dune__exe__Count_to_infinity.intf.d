examples/count_to_infinity.mli:
