examples/provenance_why.ml: Fmt List Logic Ndlog
