examples/metarouting_compose.mli:
