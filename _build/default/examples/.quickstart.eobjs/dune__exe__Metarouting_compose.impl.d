examples/metarouting_compose.ml: Algebra Fmt List
