examples/quickstart.mli:
