examples/softstate_ping.mli:
