examples/softstate_ping.ml: Dist Fmt List Ndlog Netsim
