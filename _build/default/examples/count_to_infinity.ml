(* Count-to-infinity in the distance-vector protocol (Section 3.1: the
   FVN methodology exhibits "the presence of count-to-infinity loops in
   the distance-vector protocol").

   Three views of the same defect:
   1. Declarative: the distance-vector NDlog program (no path vector,
      no cycle check) has no finite fixpoint on a cyclic topology — the
      evaluator's round bound trips instead of converging, while the
      path-vector program on the same topology converges.
   2. Operational: the distance-vector state machine over the network
      simulator counts to infinity after a link failure partitions the
      network (stale routes bounce between the survivors).
   3. Repaired: a hop-count bound restores convergence — the standard
      RIP-style mitigation.

   Run with:  dune exec examples/count_to_infinity.exe *)

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  section "1. Declarative view: no finite fixpoint on a cycle";
  Fmt.pr "%s@." Ndlog.Programs.distance_vector_src;
  let dv =
    Ndlog.Programs.with_links
      (Ndlog.Programs.distance_vector ())
      (Ndlog.Programs.ring_links 3)
  in
  let o = Ndlog.Eval.run_exn ~max_rounds:50 dv in
  Fmt.pr
    "distance-vector on a 3-ring: converged=%b after %d rounds (%d cost \
     tuples and growing)@."
    o.Ndlog.Eval.converged o.Ndlog.Eval.rounds
    (Ndlog.Store.cardinal "cost" o.Ndlog.Eval.db);
  let pv =
    Ndlog.Programs.with_links
      (Ndlog.Programs.path_vector ())
      (Ndlog.Programs.ring_links 3)
  in
  let o = Ndlog.Eval.run_exn pv in
  Fmt.pr "path-vector on the same ring: converged=%b after %d rounds@."
    o.Ndlog.Eval.converged o.Ndlog.Eval.rounds;

  section "2. Operational view: failure triggers the bounce";
  let topo = Netsim.Topology.line 3 in
  let proto = Dist.Dv.create ~infinity_threshold:32 ~period:5.0 topo in
  Dist.Dv.fail_link_at proto ~time:20.0 "n0" "n1";
  let report = Dist.Dv.run proto ~until:2000.0 ~max_events:100_000 in
  Fmt.pr
    "line n0-n1-n2, n0<->n1 fails at t=20: counted to infinity=%b, max \
     metric seen=%d, %d advertisements@."
    report.Dist.Dv.counted_to_infinity report.Dist.Dv.max_cost_seen
    report.Dist.Dv.total_advertisements;
  Fmt.pr "n2's route to n0 after the storm: %a@."
    Fmt.(option ~none:(any "withdrawn") int)
    (Dist.Dv.route_cost proto "n2" "n0");

  section "2b. Control: no failure, no divergence";
  let topo = Netsim.Topology.line 3 in
  let proto = Dist.Dv.create ~infinity_threshold:32 ~period:5.0 topo in
  let report = Dist.Dv.run proto ~until:100.0 ~max_events:100_000 in
  Fmt.pr "stable run: counted to infinity=%b, max metric %d@."
    report.Dist.Dv.counted_to_infinity report.Dist.Dv.max_cost_seen;

  section "3. Repair: a hop bound restores a finite fixpoint";
  let bounded =
    Ndlog.Programs.with_links
      (Ndlog.Programs.bounded_distance_vector ~max_hops:8)
      (Ndlog.Programs.ring_links 3)
  in
  let o = Ndlog.Eval.run_exn bounded in
  Fmt.pr "bounded distance-vector on the 3-ring: converged=%b in %d rounds@."
    o.Ndlog.Eval.converged o.Ndlog.Eval.rounds;
  Ndlog.Store.tuples "bestCost" o.Ndlog.Eval.db
  |> List.iter (fun t ->
         Fmt.pr "  bestCost %a -> %a = %a@." Ndlog.Value.pp t.(0) Ndlog.Value.pp
           t.(1) Ndlog.Value.pp t.(2))
