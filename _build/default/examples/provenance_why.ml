(* Why is this route in my table?  Provenance, certification, and
   induction — the proof-theoretic side of NDlog made tangible.

   The paper's soundness rests on "the equivalence of NDlog's
   proof-theoretic semantics and operational semantics" (footnote 1).
   This example makes the equivalence executable three ways:

   1. provenance: reconstruct the derivation tree of a routing tuple;
   2. certification: compile that tree into a sequent proof the kernel
      re-checks (operational run -> logical proof);
   3. induction: prove a property of ALL derivable tuples (not just the
      ones this run produced) by fixpoint induction.

   Run with:  dune exec examples/provenance_why.exe *)

module V = Ndlog.Value

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  let program =
    Ndlog.Programs.with_links
      (Ndlog.Programs.path_vector ())
      (Ndlog.Programs.line_links 4)
  in
  let o = Ndlog.Eval.run_exn program in

  section "1. Why does n0 route to n3 at cost 3?";
  let tuple =
    [|
      V.Addr "n0"; V.Addr "n3";
      V.List [ V.Addr "n0"; V.Addr "n1"; V.Addr "n2"; V.Addr "n3" ];
      V.Int 3;
    |]
  in
  (match Ndlog.Provenance.explain program o.Ndlog.Eval.db "path" tuple with
  | Ok d ->
    Fmt.pr "%a" Ndlog.Provenance.pp d;
    Fmt.pr "derivation: %d nodes, depth %d@." (Ndlog.Provenance.size d)
      (Ndlog.Provenance.depth d)
  | Error e -> Fmt.pr "no derivation: %s@." e);

  section "2. ... and why is 2 the best cost to n2?";
  (match
     Ndlog.Provenance.explain program o.Ndlog.Eval.db "bestPathCost"
       [| V.Addr "n0"; V.Addr "n2"; V.Int 2 |]
   with
  | Ok d -> Fmt.pr "%a" Ndlog.Provenance.pp d
  | Error e -> Fmt.pr "no derivation: %s@." e);

  section "3. The derivation as a kernel-checked proof";
  (match Logic.Certify.certify_tuple program "path" tuple with
  | Ok cert ->
    Fmt.pr "theorem: %a@." Logic.Formula.pp cert.Logic.Certify.cert_goal;
    Fmt.pr "kernel accepted a %d-inference proof from %d axioms@."
      (Logic.Proof.size cert.Logic.Certify.cert_proof)
      (List.length cert.Logic.Certify.cert_theory.Logic.Theory.entries)
  | Error e -> Fmt.pr "certification failed: %s@." e);

  section "4. From one run to all runs: fixpoint induction";
  let thy = Logic.Completion.theory_of_program program in
  let links_positive =
    Logic.Fparser.parse_exn "forall S D C. link(S,D,C) => 1 <= C"
  in
  let goal =
    Logic.Fparser.parse_exn "forall S D P C. path(S,D,P,C) => 1 <= C"
  in
  (match
     Logic.Prove.prove_by_induction thy ~hyps:[ links_positive ] ~on:"path"
       goal
   with
  | Ok p ->
    Fmt.pr
      "PROVED (for every network with positive link costs, every derivable \
       path has cost >= 1): %d kernel inferences@."
      p.Logic.Prove.steps
  | Error e -> Fmt.pr "induction failed: %s@." e);

  section "5. The same property fails without the hypothesis";
  match Logic.Prove.prove_by_induction ~max_fuel:3 thy ~on:"path" goal with
  | Ok _ -> Fmt.pr "unexpectedly proved@."
  | Error e -> Fmt.pr "correctly not provable:@.%s@." e
