(* Quickstart: the complete FVN loop on the paper's running example.

   1. Write (or here: load) the path-vector protocol in NDlog.
   2. Compile it into its logical specification (Clark completion).
   3. State the route-optimality theorem and prove it automatically;
      the kernel re-checks the proof.
   4. Execute the very same program — centralized, then distributed
      over the network simulator — and inspect the routing tables.

   Run with:  dune exec examples/quickstart.exe *)

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  section "1. The NDlog program (Section 2.2 of the paper)";
  Fmt.pr "%s@." Ndlog.Programs.path_vector_src;

  let program =
    Ndlog.Programs.with_links
      (Ndlog.Programs.path_vector ())
      (Ndlog.Programs.ring_links ~cost:(fun i -> 1 + (i mod 3)) 5)
  in

  section "2. Logical specification (arc 4)";
  let theory = Logic.Completion.theory_of_program program in
  Fmt.pr "%a" Logic.Theory.pp theory;

  section "3. Static verification (arc 5)";
  let props =
    [
      Fvn.Props.route_optimality ();
      Fvn.Props.aggregate_membership ();
      Fvn.Props.one_hop_paths ();
    ]
  in
  (match Fvn.Pipeline.verify_program program props with
  | Ok v ->
    Fmt.pr "%a" Fvn.Pipeline.pp_verification v;
    if not (Fvn.Pipeline.proved v) then exit 1
  | Error e ->
    Fmt.pr "verification error: %s@." e;
    exit 1);

  section "4a. Centralized execution (arc 7)";
  (match Fvn.Pipeline.execute program with
  | Ok (Fvn.Pipeline.Central o) ->
    Fmt.pr "converged in %d rounds, %d derivations@." o.Ndlog.Eval.rounds
      o.Ndlog.Eval.derivations;
    Fmt.pr "best paths from n0:@.";
    Ndlog.Store.tuples "bestPath" o.Ndlog.Eval.db
    |> List.iter (fun t ->
           if Ndlog.Value.equal t.(0) (Ndlog.Value.Addr "n0") then
             Fmt.pr "  to %a: path %a, cost %a@." Ndlog.Value.pp t.(1)
               Ndlog.Value.pp t.(2) Ndlog.Value.pp t.(3))
  | Ok _ | Error _ -> exit 1);

  section "4b. Distributed execution over the simulator (arc 7)";
  match Fvn.Pipeline.execute_distributed program with
  | Ok (Fvn.Pipeline.Distributed { report; global; _ }) ->
    let s = report.Dist.Runtime.stats in
    Fmt.pr
      "quiesced=%b, simulated time %.1f, %d messages delivered, %d local \
       inserts@."
      s.Netsim.Sim.quiesced s.Netsim.Sim.final_time
      s.Netsim.Sim.messages_delivered report.Dist.Runtime.total_inserts;
    Fmt.pr "global bestPathCost relation has %d tuples (same as centralized)@."
      (Ndlog.Store.cardinal "bestPathCost" global)
  | Ok _ -> exit 1
  | Error e ->
    Fmt.pr "distributed execution error: %s@." e;
    exit 1
