(* The Disagree scenario (Sections 3.2 and the Griffin-Shepherd-Wilfong
   stable paths problem): policy conflicts between two ASes.

   The example walks the whole FVN treatment of the scenario:
   - the component-based BGP design (Figure 2) and its generated NDlog;
   - a verified property of the generated specification;
   - protocol dynamics: synchronous oscillation, asynchronous
     convergence, delayed convergence under near-synchronous schedules;
   - the SPP view: two stable solutions, model-checked oscillation.

   Run with:  dune exec examples/bgp_disagree.exe *)

module Bgp = Component.Bgp

let section title = Fmt.pr "@.=== %s ===@." title

let pp_best ppf (u, d, r) =
  Fmt.pf ppf "%s -> %s via %a (lp %d, cost %d)" u d
    Fmt.(list ~sep:(any ".") string)
    r.Bgp.path r.Bgp.lp r.Bgp.cost

let () =
  section "The component model (Figure 2)";
  Fmt.pr "%a" Component.Model.pp Bgp.model;

  section "Generated NDlog program (arc 3)";
  Fmt.pr "%a@." Ndlog.Ast.pp_program (Bgp.program ());

  section "A verified property of the generated specification";
  let prop =
    Fvn.Props.implication ~name:"importedHasPref"
      ~antecedent:("imported", [ "U"; "W"; "D"; "P"; "LP"; "C" ])
      ~consequent:("importPref", [ "U"; "W"; "LP" ])
      ()
  in
  (match Logic.Prove.prove (Bgp.theory ()) prop.Fvn.Props.formula with
  | Ok o ->
    Fmt.pr "PROVED importedHasPref in %d steps (kernel checked: %b)@."
      o.Logic.Prove.steps o.Logic.Prove.checked
  | Error e -> Fmt.pr "proof failed: %s@." e);

  section "Synchronous activation: the protocol oscillates";
  let o = Bgp.run ~max_rounds:50 Bgp.disagree ~schedule:Bgp.Sync in
  Fmt.pr "converged=%b oscillated=%b cycle=%a flaps=%d@." o.Bgp.converged
    o.Bgp.oscillated
    Fmt.(option ~none:(any "-") int)
    o.Bgp.cycle_length o.Bgp.flaps;

  section "Round-robin activation: asynchrony breaks the tie";
  let o = Bgp.run ~max_rounds:200 Bgp.disagree ~schedule:Bgp.Pair_round_robin in
  Fmt.pr "converged=%b in %d rounds; final routes:@." o.Bgp.converged
    o.Bgp.rounds;
  List.iter (fun b -> Fmt.pr "  %a@." pp_best b) o.Bgp.final_best;

  section "Delayed convergence under near-synchronous random schedules";
  let mean f l =
    List.fold_left (fun a x -> a +. f x) 0.0 l /. float_of_int (List.length l)
  in
  let profile name c =
    let runs = Bgp.convergence_profile ~runs:15 ~max_rounds:600 c in
    Fmt.pr "  %-10s mean rounds %.1f, mean flaps %.1f@." name
      (mean (fun (_, r, _) -> float_of_int r) runs)
      (mean (fun (_, _, f) -> float_of_int f) runs)
  in
  profile "disagree" Bgp.disagree;
  profile "agree" Bgp.agree;

  section "Classifying the configurations before running them";
  let show name c =
    match Bgp.classify c ~dest:"d0" with
    | Ok cls ->
      Fmt.pr "  %-10s %s@." name
        (match cls with
        | Spp.Solver.Unique -> "SAFE: unique stable routing"
        | Spp.Solver.Multiple n ->
          Printf.sprintf "WEDGED: %d stable routings (outcome depends on timing)" n
        | Spp.Solver.Unsolvable -> "DIVERGENT: no stable routing exists")
    | Error e -> Fmt.pr "  %-10s error: %s@." name e
  in
  show "disagree" Bgp.disagree;
  show "agree" Bgp.agree;

  section "The SPP view: stable solutions and model checking";
  let report = Spp.Ts.analyze Spp.Gadgets.disagree in
  Fmt.pr
    "disagree: %d states, %d reachable stable solutions, interleaved \
     oscillation=%b, synchronous oscillation=%b@."
    report.Spp.Ts.states report.Spp.Ts.stable_reachable
    (report.Spp.Ts.oscillation <> None)
    report.Spp.Ts.sync_oscillates;
  let bad = Spp.Ts.analyze Spp.Gadgets.bad_gadget in
  Fmt.pr "bad gadget: %d states, %d stable solutions, oscillation lasso=%b@."
    bad.Spp.Ts.states bad.Spp.Ts.stable_reachable
    (bad.Spp.Ts.oscillation <> None)
