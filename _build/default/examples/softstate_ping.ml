(* Soft state (Section 4.2): a heartbeat protocol whose liveness table
   expires when refreshes stop, plus the mechanical rewrite to
   hard-state rules with explicit timestamps used for verification.

   Run with:  dune exec examples/softstate_ping.exe *)

module Programs = Ndlog.Programs
module Store = Ndlog.Store
module Softstate = Ndlog.Softstate

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  section "The soft-state heartbeat program (5s lifetimes)";
  Fmt.pr "%s@." (Programs.heartbeat_src ~lifetime:5);

  section "Distributed run: tuples expire when refreshes stop";
  let links = Programs.line_links 2 in
  let program = Programs.with_links (Programs.heartbeat ~lifetime:5) links in
  let localized =
    match Ndlog.Localize.rewrite_program program with
    | Ok r -> r.Ndlog.Localize.program
    | Error _ -> assert false
  in
  let topo = Netsim.Topology.line 2 in
  let rt = Dist.Runtime.create topo localized in
  Dist.Runtime.load_facts rt;
  ignore (Dist.Runtime.run rt ~until:2.0);
  Fmt.pr "t=2: n1 sees %d live neighbors@."
    (Store.cardinal "aliveNeighbor" (Dist.Runtime.node_store rt "n1"));
  ignore (Dist.Runtime.run rt ~until:60.0);
  Fmt.pr "t=60 (no refresh loop installed): n1 sees %d live neighbors@."
    (Store.cardinal "aliveNeighbor" (Dist.Runtime.node_store rt "n1"));

  section "Hard-state rewrite (explicit timestamps; Section 4.2)";
  let report = Softstate.to_hard_state program in
  Fmt.pr
    "soft predicates: %a; %d timestamp columns and %d liveness guards added@."
    Fmt.(list ~sep:(any ", ") string)
    report.Softstate.soft_preds report.Softstate.added_columns
    report.Softstate.added_conditions;
  Fmt.pr "rewritten program:@.%a@." Ndlog.Ast.pp_program
    report.Softstate.rewritten;

  section "Evaluating the rewrite at different clock values";
  List.iter
    (fun now ->
      match Softstate.run_at_clock report.Softstate.rewritten ~now with
      | Ok o ->
        Fmt.pr "  clock=%2d: %d live aliveNeighbor tuples@." now
          (Store.cardinal "aliveNeighbor" o.Ndlog.Eval.db)
      | Error e -> Fmt.pr "  clock=%2d: error %a@." now Ndlog.Analysis.pp_error e)
    [ 0; 3; 5; 10; 60 ]
